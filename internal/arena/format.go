// Package arena implements the sealed, zero-copy on-disk model format
// (modelio format v3): one contiguous little-endian file whose sections
// — catalog tables, pooled expansion lists, the flattened matcher tries
// exactly as rules.Matcher seals them, columnar rule records with
// stable IDs, and pre-marshaled recommendation blobs — are fixed-layout
// segments addressed by a header of offsets, with a whole-file sha256.
//
// Opening a sealed file is mmap (or a pure-Go ReadFile fallback) plus
// O(#sections) pointer fixup into index-based views: no per-rule work,
// no deserialization, and the page cache is shared across processes.
// All unsafe aliasing in the repository is confined to this package
// (enforced by the profitlint `arenaonly` rule).
//
// # Layout
//
//	offset 0   magic "PMARENA1" (8 bytes)
//	offset 8   format version (u32) — currently 1
//	offset 12  reserved (u32)
//	offset 16  sha256 over file[48:end] (32 bytes)
//	offset 48  file size (u64) — must equal the actual length
//	offset 56  section count (u32) — NumSections exactly
//	offset 60  reserved (u32)
//	offset 64  section table: NumSections × {offset u64, length u64}
//	...        sections, each 8-byte aligned, in table order
//
// The checksum covers everything after itself (size, table, sections),
// so Verify is one linear pass and the stored digest doubles as the
// model's content hash for cluster distribution and watcher identity.
//
// # Invariants
//
//   - All multi-byte values are little-endian; Open refuses to run on
//     big-endian hosts rather than silently mis-alias.
//   - Every section offset is 8-byte aligned and sections appear in
//     table order without overlap, so typed views (int32/int64/float64
//     slices) can alias the mapping directly.
//   - Open performs only O(#sections) structural validation — never
//     O(rules) or O(items). A truncated file or a damaged header fails
//     Open; payload bit-flips and the linear structural scans
//     (expansion offsets, catalog bounds) are Verify's job, which
//     stagers (registry, cluster sync, profitminer -seal) run once per
//     new content hash. Catalog materialization is deferred to the
//     first Catalog call and memoized.
//   - Views index into one global rule table; *rules.Rule pointers
//     never exist for a sealed model, which is what makes open time
//     independent of model size.
package arena

// magic identifies a sealed model file; the trailing digit is the
// layout generation, bumped together with formatVersion on any
// incompatible change.
const magic = "PMARENA1"

// formatVersion is the sealed-format version this package reads and
// writes.
const formatVersion = 1

// checksumStart is the file offset the stored sha256 covers from.
const checksumStart = 48

// HeaderPrefixLen is the number of leading bytes that carry the magic,
// version, and content checksum — all a watcher needs to identify a
// sealed file without reading its body.
const HeaderPrefixLen = checksumStart

// Section indices. The table is fixed: a format-v1 file has exactly
// these sections in this order.
const (
	SecMeta = iota // fixed-size counts + build stats (metaSize bytes)

	// Catalog: enough to materialize a *model.Catalog at open.
	SecItemNameOff  // int32[items+1] offsets into SecItemNamePool
	SecItemNamePool // item names, concatenated
	SecItemTarget   // byte[items], 0/1 target flags
	SecPromoItem    // int32[promos], owning item ID per promo
	SecPromoEcon    // float64[3*promos]: price, cost, packing per promo

	// Per-promotion sale expansions (hierarchy.Expansions layout).
	SecExpOff  // int32[promos+2]
	SecExpPool // GenID[...]

	// Columnar rule table: final rules in MPF rank order, then the
	// per-item alternates (in matcher trie order) not already present.
	SecRuleBodyOff     // int32[R+1] offsets into SecRuleBodyPool
	SecRuleBodyPool    // GenID[...]
	SecRuleHead        // GenID[R]
	SecRuleHeadItem    // int32[R] head item ID
	SecRuleHeadPromo   // int32[R] head promo ID
	SecRuleBodyCount   // int32[R] support count N
	SecRuleHits        // int32[R]
	SecRuleOrder       // int32[R]
	SecRuleProfit      // float64[R] Prof_ru
	SecRuleProfRe      // float64[R] Prof_re (Profit/BodyCount, sealed so ranking reads one column)
	SecRuleIDPool      // byte[RuleIDLen*R] stable IDs, fixed records
	SecRuleStrOff      // int32[R+1] offsets into SecRuleStrPool
	SecRuleStrPool     // rendered rule strings
	SecRuleExplainOff  // int32[R+1] offsets into SecRuleExplainPool
	SecRuleExplainPool // explain lines, '\n'-joined per rule
	SecRuleBlobOff     // int64[R+1] offsets into SecRuleBlobPool
	SecRuleBlobPool    // pre-marshaled recommendation JSON blobs

	// Flattened matcher trie over the final rules (rules.Matcher's
	// sealed layout; rule lists hold global rule-table indices).
	SecTrieItem
	SecTrieChildLo
	SecTrieChildHi
	SecTrieRuleLo
	SecTrieRuleHi
	SecTrieRules
	SecTrieDefaults

	// Same seven sections for the per-item alternates matcher.
	SecAltItem
	SecAltChildLo
	SecAltChildHi
	SecAltRuleLo
	SecAltRuleHi
	SecAltRules
	SecAltDefaults

	NumSections
)

// headerSize is where the first section may start: fixed header plus
// the section table. 64 + 16*39 = 688, already 8-byte aligned.
const headerSize = 64 + 16*NumSections

// RuleIDLen is the fixed width of one stable rule ID ("r" + 16 hex
// digits, rules.StableID).
const RuleIDLen = 17

// metaSize is the encoded size of Meta.
const metaSize = 48

// metaFlagMOA marks a model whose space was compiled with the MOA
// extension.
const metaFlagMOA = 1 << 0

// Meta carries the fixed-size counts and build statistics of a sealed
// model.
type Meta struct {
	NumItems     int
	NumPromos    int
	NumRules     int // total servable rules (final ∪ alternates)
	NumFinal     int // leading rules of the table, in MPF rank order
	Generated    int
	NonDominated int
	TreeDepth    int
	MOA          bool

	ProjectedProfit float64

	TrieRootHi int32 // root child block of the final-rule trie
	AltRootHi  int32 // root child block of the alternates trie
}
