package arena_test

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"profitmining/internal/arena"
	"profitmining/internal/core"
	"profitmining/internal/datagen"
	"profitmining/internal/hierarchy"
	"profitmining/internal/mining"
	"profitmining/internal/modelio"
)

// sealedGrocery builds the deterministic grocery model once and returns
// its sealed image. The grocery world has a real concept hierarchy and
// multi-promo items, so every section of the format is non-trivially
// populated.
func sealedGrocery(t testing.TB) ([]byte, *core.Recommender) {
	t.Helper()
	g := datagen.NewGrocery(500, 7)
	space, err := g.Builder.Compile(hierarchy.Options{MOA: true})
	if err != nil {
		t.Fatal(err)
	}
	mined, err := mining.Mine(space, g.Dataset.Transactions, mining.Options{MinSupport: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := core.Build(space, g.Dataset.Transactions, mined, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := modelio.Seal(g.Dataset.Catalog, rec)
	if err != nil {
		t.Fatal(err)
	}
	return data, rec
}

func TestSealedRoundTripMeta(t *testing.T) {
	data, rec := sealedGrocery(t)
	if !arena.SniffMagic(data) {
		t.Fatal("sealed image does not sniff as sealed")
	}
	m, err := arena.OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	st := rec.Stats()
	meta := m.Meta()
	if meta.NumFinal != st.RulesFinal || meta.Generated != st.RulesGenerated ||
		meta.NonDominated != st.RulesNonDominated || meta.TreeDepth != st.TreeDepth {
		t.Errorf("meta %+v does not reproduce build stats %+v", meta, st)
	}
	if rt := m.Rules(); rt.N() < meta.NumFinal || meta.NumFinal == 0 {
		t.Errorf("rule table holds %d rules, meta claims %d final", m.Rules().N(), meta.NumFinal)
	}
	hash, err := arena.HeaderHash(data[:arena.HeaderPrefixLen])
	if err != nil {
		t.Fatal(err)
	}
	if hash != m.ContentHash() {
		t.Errorf("HeaderHash %s != ContentHash %s", hash, m.ContentHash())
	}
	cat, err := m.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if cat.NumItems() != meta.NumItems || cat.NumPromos() != meta.NumPromos {
		t.Errorf("catalog materialized %d items/%d promos, meta says %d/%d",
			cat.NumItems(), cat.NumPromos(), meta.NumItems, meta.NumPromos)
	}
}

// TestBitFlipEverySection flips one bit in the middle of every
// non-empty section and requires the file to fail loudly: either Open
// rejects the structure, or Open succeeds and Verify rejects the
// checksum. A flip that neither rejects would serve corrupt data.
func TestBitFlipEverySection(t *testing.T) {
	data, _ := sealedGrocery(t)
	for sec := 0; sec < arena.NumSections; sec++ {
		off := binary.LittleEndian.Uint64(data[64+16*sec:])
		ln := binary.LittleEndian.Uint64(data[64+16*sec+8:])
		if ln == 0 {
			continue
		}
		mut := append([]byte(nil), data...)
		mut[off+ln/2] ^= 0x10
		m, err := arena.OpenBytes(mut)
		if err != nil {
			continue // structural validation caught it at open
		}
		if err := m.Verify(); err == nil {
			t.Errorf("section %d: bit flip at %d survived Open and Verify", sec, off+ln/2)
		}
	}
}

// TestChecksumFlip corrupts the stored digest itself.
func TestChecksumFlip(t *testing.T) {
	data, _ := sealedGrocery(t)
	mut := append([]byte(nil), data...)
	mut[20] ^= 0x01 // inside the header checksum [16:48)
	m, err := arena.OpenBytes(mut)
	if err != nil {
		return
	}
	if err := m.Verify(); err == nil {
		t.Error("flipped checksum byte passed Verify")
	}
}

// TestTruncatedTail cuts the file at several points; every cut must
// fail Open (never Verify-later): a truncated mapping must not hand out
// views at all.
func TestTruncatedTail(t *testing.T) {
	data, _ := sealedGrocery(t)
	for _, cut := range []int{len(data) - 1, len(data) - 100, len(data) / 2, 700, 100, 10, 0} {
		if _, err := arena.OpenBytes(append([]byte(nil), data[:cut]...)); err == nil {
			t.Errorf("file truncated to %d bytes opened cleanly", cut)
		}
	}
}

// TestHeaderCorruption damages each header field in turn; Open must
// reject every variant before any view exists.
func TestHeaderCorruption(t *testing.T) {
	data, _ := sealedGrocery(t)
	cases := []struct {
		name string
		mut  func(b []byte)
	}{
		{"bad magic", func(b []byte) { b[0] ^= 0xFF }},
		{"bad version", func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 99) }},
		{"wrong file size", func(b []byte) { binary.LittleEndian.PutUint64(b[48:], uint64(len(b)+8)) }},
		{"wrong section count", func(b []byte) { binary.LittleEndian.PutUint32(b[56:], 7) }},
		{"misaligned section offset", func(b []byte) {
			off := binary.LittleEndian.Uint64(b[64+16*arena.SecPromoItem:])
			binary.LittleEndian.PutUint64(b[64+16*arena.SecPromoItem:], off+4)
		}},
		{"overlapping sections", func(b []byte) {
			off := binary.LittleEndian.Uint64(b[64+16*arena.SecItemNameOff:])
			binary.LittleEndian.PutUint64(b[64+16*arena.SecItemNamePool:], off)
		}},
		{"section escapes file", func(b []byte) {
			binary.LittleEndian.PutUint64(b[64+16*arena.SecRuleBlobPool+8:], uint64(len(b)))
		}},
	}
	for _, tc := range cases {
		mut := append([]byte(nil), data...)
		tc.mut(mut)
		if _, err := arena.OpenBytes(mut); err == nil {
			t.Errorf("%s: Open accepted the damaged header", tc.name)
		}
	}
}

func TestHeaderHashErrors(t *testing.T) {
	data, _ := sealedGrocery(t)
	if _, err := arena.HeaderHash(data[:10]); err == nil {
		t.Error("short prefix produced a header hash")
	}
	if _, err := arena.HeaderHash([]byte("not a sealed model prefix, но длинный enough padding......")); err == nil {
		t.Error("bad magic produced a header hash")
	}
}

// TestOpenBytesMisaligned forces the aligned-copy path: a view into a
// deliberately misaligned buffer must still open and verify.
func TestOpenBytesMisaligned(t *testing.T) {
	data, _ := sealedGrocery(t)
	buf := make([]byte, len(data)+1)
	copy(buf[1:], data)
	m, err := arena.OpenBytes(buf[1:])
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestNoMmapFallback pins the pure-Go path (exercised under -race in
// CI): same meta, same verification, Mapped reports false.
func TestNoMmapFallback(t *testing.T) {
	data, _ := sealedGrocery(t)
	path := filepath.Join(t.TempDir(), "model.pma")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	heap, err := arena.OpenFile(path, arena.Options{NoMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer heap.Arena().Close()
	if heap.Arena().Mapped() {
		t.Error("NoMmap open still reports a mapping")
	}
	if err := heap.Verify(); err != nil {
		t.Fatal(err)
	}
	def, err := arena.OpenFile(path, arena.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer def.Arena().Close()
	if err := def.Verify(); err != nil {
		t.Fatal(err)
	}
	if heap.Meta() != def.Meta() {
		t.Errorf("fallback meta %+v != default-open meta %+v", heap.Meta(), def.Meta())
	}
	if !bytes.Equal(heap.Arena().Bytes(), def.Arena().Bytes()) {
		t.Error("fallback bytes differ from default-open bytes")
	}
	t.Logf("default open mapped: %v", def.Arena().Mapped())
}

// TestCloseIdempotent double-closes both arena kinds.
func TestCloseIdempotent(t *testing.T) {
	data, _ := sealedGrocery(t)
	path := filepath.Join(t.TempDir(), "model.pma")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, opts := range []arena.Options{{}, {NoMmap: true}} {
		m, err := arena.OpenFile(path, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Arena().Close(); err != nil {
			t.Fatal(err)
		}
		if err := m.Arena().Close(); err != nil {
			t.Errorf("second Close (mapped=%v) errored: %v", opts.NoMmap, err)
		}
	}
}
