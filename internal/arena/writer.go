package arena

import (
	"crypto/sha256"
	"encoding/binary"
	"os"

	"profitmining/internal/hierarchy"
)

// Writer assembles one sealed model image. Sealing is the offline,
// O(model) half of the format: the serving side never pays for layout
// again. Typical use: fill every section, SetMeta, Finish.
type Writer struct {
	meta Meta
	secs [NumSections][]byte
}

// NewWriter returns a Writer, refusing big-endian hosts (the format is
// little-endian and the writer emits host-order bytes).
func NewWriter() (*Writer, error) {
	if !hostLittleEndian() {
		return nil, errf("sealing requires a little-endian host")
	}
	return &Writer{}, nil
}

// SetMeta records the counts and build statistics.
func (w *Writer) SetMeta(m Meta) { w.meta = m }

// PutI32 fills a section with int32 values. The slice is aliased until
// Finish copies it into the image.
func (w *Writer) PutI32(sec int, v []int32) { w.secs[sec] = asBytes(v) }

// PutI64 fills a section with int64 values.
func (w *Writer) PutI64(sec int, v []int64) { w.secs[sec] = asBytes(v) }

// PutF64 fills a section with float64 values.
func (w *Writer) PutF64(sec int, v []float64) { w.secs[sec] = asBytes(v) }

// PutGen fills a section with generalized-sale IDs.
func (w *Writer) PutGen(sec int, v []hierarchy.GenID) { w.secs[sec] = asBytes(v) }

// PutBytes fills a byte-pool section.
func (w *Writer) PutBytes(sec int, v []byte) { w.secs[sec] = v }

// Finish lays the sections out 8-byte aligned in table order, writes
// the header and section table, and seals the image with its sha256.
// The result round-trips through OpenBytes; Seal callers re-open it as
// a self-check.
func (w *Writer) Finish() ([]byte, error) {
	w.secs[SecMeta] = encodeMeta(w.meta)

	total := headerSize
	var offs [NumSections]int
	for i, s := range w.secs {
		offs[i] = total
		total += (len(s) + 7) &^ 7
	}
	// The final section needs no tail padding; keep the exact end so
	// pool-bracket checks see true lengths.
	if n := len(w.secs[NumSections-1]); n%8 != 0 {
		total -= 8 - n%8
	}

	buf := make([]byte, total)
	copy(buf, magic)
	binary.LittleEndian.PutUint32(buf[8:], formatVersion)
	binary.LittleEndian.PutUint64(buf[48:], uint64(total))
	binary.LittleEndian.PutUint32(buf[56:], NumSections)
	for i, s := range w.secs {
		binary.LittleEndian.PutUint64(buf[64+16*i:], uint64(offs[i]))
		binary.LittleEndian.PutUint64(buf[64+16*i+8:], uint64(len(s)))
		copy(buf[offs[i]:], s)
	}
	sum := sha256.Sum256(buf[checksumStart:])
	copy(buf[16:48], sum[:])
	return buf, nil
}

// WriteFile finishes the image and writes it to path in one call.
func (w *Writer) WriteFile(path string) error {
	data, err := w.Finish()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
