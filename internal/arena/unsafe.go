package arena

import "unsafe"

// This file is the only place in the repository where raw bytes are
// reinterpreted as typed data (see the arenaonly lint rule). Every
// alias call is made against a section whose offset the parser has
// already checked to be 8-byte aligned within an 8-aligned (page- or
// heap-) base, so the pointer casts below never produce a misaligned
// load.

// hostLittleEndian reports whether the running CPU stores integers
// little-endian. The sealed format is defined as little-endian, and on
// the wrong-endian host the typed views below would silently byte-swap
// every value — so both sealing and opening refuse to run there.
func hostLittleEndian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// alias reinterprets b as a []T without copying. b must be empty or
// start at a Sizeof(T)-aligned address and hold a whole number of T.
func alias[T any](b []byte) []T {
	if len(b) == 0 {
		return nil
	}
	var zero T
	size := int(unsafe.Sizeof(zero))
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), len(b)/size)
}

// asBytes is the inverse of alias: the raw little-endian bytes of v,
// without copying. Only valid on little-endian hosts (the writer
// checks once at construction).
func asBytes[T any](v []T) []byte {
	if len(v) == 0 {
		return nil
	}
	var zero T
	size := int(unsafe.Sizeof(zero))
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*size)
}

// byteString views b as a string without copying — the zero-alloc path
// for rule IDs and rendered rule strings served straight from the
// mapping. The string is valid for as long as the arena stays mapped;
// everything handed out lives behind a Model, which keeps its Arena
// reachable.
func byteString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// alignedCopy returns a copy of data whose base address is 8-byte
// aligned, for the rare allocator that hands ReadFile bytes at an odd
// offset.
func alignedCopy(data []byte) []byte {
	buf := make([]uint64, (len(data)+7)/8)
	out := asBytes(buf)[:len(data)]
	copy(out, data)
	return out
}

// isAligned8 reports whether b's base address is 8-byte aligned.
func isAligned8(b []byte) bool {
	if len(b) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(&b[0]))%8 == 0
}
