package arena

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
)

// Options controls how a sealed file is opened.
type Options struct {
	// NoMmap forces the pure-Go ReadFile path even when the build
	// supports mmap — tests exercise the fallback this way under -race
	// without a separate build.
	NoMmap bool
}

// Arena owns the raw bytes of one sealed model: either a read-only
// shared mapping or a heap buffer from the ReadFile fallback. Views
// handed out by the Model alias these bytes directly, and the Model
// keeps its Arena reachable, so views stay valid until the last
// reference to the Model is gone — at which point the finalizer
// unmaps. Close may be called explicitly (tests, CLIs); it is
// idempotent and must not race in-flight readers.
type Arena struct {
	data   []byte
	mapped bool
	closed atomic.Bool
}

// Bytes returns the whole sealed image, for shipping verbatim (cluster
// model distribution) or re-saving. Must not be modified.
func (a *Arena) Bytes() []byte { return a.data }

// Mapped reports whether the arena is an mmap (false: heap fallback).
func (a *Arena) Mapped() bool { return a.mapped }

// Close releases the mapping (a no-op for the heap fallback beyond
// letting the GC reclaim the buffer). Idempotent.
func (a *Arena) Close() error {
	if !a.closed.CompareAndSwap(false, true) {
		return nil
	}
	runtime.SetFinalizer(a, nil)
	if a.mapped {
		data := a.data
		a.data = nil
		return munmapBytes(data)
	}
	a.data = nil
	return nil
}

// OpenFile opens a sealed model file: mmap when the platform and build
// allow it, ReadFile otherwise. Open allocates O(1) in model size —
// structural validation is a bounds pass over the offset columns
// (O(items+promos) comparisons, never O(rules), no allocations) and
// the heap catalog materializes lazily on first Catalog() call. Open
// validates structure only; run Verify (or use a path that does, like
// registry staging) before trusting content from an untrusted source.
func OpenFile(path string, opts Options) (*Model, error) {
	if mmapAvailable && !opts.NoMmap {
		m, err := openMapped(path)
		if err == nil {
			return m, nil
		}
		var perr *parseError
		if asParseError(err, &perr) {
			return nil, err // structurally bad file: the fallback would fail the same way
		}
		// mmap itself failed (exotic filesystem, resource limits):
		// degrade to the portable path.
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return OpenBytes(data)
}

func openMapped(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := int(info.Size())
	if size < headerSize {
		return nil, &parseError{fmt.Sprintf("arena: file is %d bytes, smaller than the %d-byte header", size, headerSize)}
	}
	data, err := mmapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("arena: mmap %s: %w", path, err)
	}
	a := &Arena{data: data, mapped: true}
	// The mapping outlives the fd; reclaim the address space when the
	// last Model reference is collected.
	runtime.SetFinalizer(a, func(ar *Arena) { ar.Close() })
	m, err := parse(a)
	if err != nil {
		a.Close()
		return nil, err
	}
	return m, nil
}

// OpenBytes opens a sealed model held in memory (the cluster sync path
// receives images over HTTP). The buffer is aliased, not copied,
// unless its base address is misaligned.
func OpenBytes(data []byte) (*Model, error) {
	if !isAligned8(data) {
		data = alignedCopy(data)
	}
	return parse(&Arena{data: data})
}

// parseError marks structural-validation failures, as opposed to I/O
// errors: a file that fails parse under mmap will fail identically via
// ReadFile, so OpenFile does not retry those.
type parseError struct{ msg string }

func (e *parseError) Error() string { return e.msg }

func asParseError(err error, target **parseError) bool {
	for err != nil {
		if pe, ok := err.(*parseError); ok {
			*target = pe
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func errf(format string, args ...any) error {
	return &parseError{"arena: " + fmt.Sprintf(format, args...)}
}

// SniffMagic reports whether data begins with a sealed-model header.
// A HeaderPrefixLen-byte prefix is enough.
func SniffMagic(data []byte) bool {
	return len(data) >= len(magic) && string(data[:len(magic)]) == magic
}

// HeaderHash extracts the stored content checksum (hex) from a sealed
// header prefix without touching the body — the watcher's cheap
// identity probe. data needs at least HeaderPrefixLen bytes.
func HeaderHash(data []byte) (string, error) {
	if !SniffMagic(data) {
		return "", errf("not a sealed model (bad magic)")
	}
	if len(data) < HeaderPrefixLen {
		return "", errf("header prefix truncated at %d bytes", len(data))
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != formatVersion {
		return "", errf("unsupported sealed format version %d (want %d)", v, formatVersion)
	}
	return hex.EncodeToString(data[16:48]), nil
}

// section is one parsed table entry.
type section struct{ off, len int }

// parse validates the header and section table, decodes the meta
// block, checks every fixed-size section length against the counts,
// and aliases the typed views. It does no per-rule work.
func parse(a *Arena) (*Model, error) {
	if !hostLittleEndian() {
		return nil, errf("sealed models require a little-endian host")
	}
	data := a.data
	if len(data) < headerSize {
		return nil, errf("file is %d bytes, smaller than the %d-byte header", len(data), headerSize)
	}
	if !SniffMagic(data) {
		return nil, errf("bad magic (not a sealed model)")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != formatVersion {
		return nil, errf("unsupported sealed format version %d (want %d)", v, formatVersion)
	}
	if size := binary.LittleEndian.Uint64(data[48:]); size != uint64(len(data)) {
		return nil, errf("header says %d bytes but file holds %d (truncated?)", size, len(data))
	}
	if n := binary.LittleEndian.Uint32(data[56:]); n != NumSections {
		return nil, errf("file has %d sections, format v%d defines %d", n, formatVersion, NumSections)
	}

	var secs [NumSections]section
	prevEnd := uint64(headerSize)
	for i := range secs {
		off := binary.LittleEndian.Uint64(data[64+16*i:])
		ln := binary.LittleEndian.Uint64(data[64+16*i+8:])
		if off%8 != 0 {
			return nil, errf("section %d offset %d is not 8-byte aligned", i, off)
		}
		if off < prevEnd || off > uint64(len(data)) || ln > uint64(len(data))-off {
			return nil, errf("section %d [%d,+%d) escapes the file or overlaps its predecessor", i, off, ln)
		}
		secs[i] = section{off: int(off), len: int(ln)}
		prevEnd = off + ln
	}
	sec := func(i int) []byte { return data[secs[i].off : secs[i].off+secs[i].len] }

	meta, err := decodeMeta(sec(SecMeta))
	if err != nil {
		return nil, err
	}
	items, promos, rcount := meta.NumItems, meta.NumPromos, meta.NumRules
	if meta.NumFinal < 0 || meta.NumFinal > rcount {
		return nil, errf("meta: %d final rules out of %d total", meta.NumFinal, rcount)
	}

	// Fixed-size sections must match the counts exactly; variable pools
	// are bounds-checked by their O(1) first/last offsets below (full
	// interior validation is Verify's checksum).
	want := func(i, wantLen int, what string) error {
		if secs[i].len != wantLen {
			return errf("%s section holds %d bytes, want %d", what, secs[i].len, wantLen)
		}
		return nil
	}
	checks := []error{
		want(SecItemNameOff, 4*(items+1), "item-name offsets"),
		want(SecItemTarget, items, "item targets"),
		want(SecPromoItem, 4*promos, "promo items"),
		want(SecPromoEcon, 8*3*promos, "promo economics"),
		want(SecExpOff, 4*(promos+2), "expansion offsets"),
		want(SecRuleBodyOff, 4*(rcount+1), "rule body offsets"),
		want(SecRuleHead, 4*rcount, "rule heads"),
		want(SecRuleHeadItem, 4*rcount, "rule head items"),
		want(SecRuleHeadPromo, 4*rcount, "rule head promos"),
		want(SecRuleBodyCount, 4*rcount, "rule body counts"),
		want(SecRuleHits, 4*rcount, "rule hits"),
		want(SecRuleOrder, 4*rcount, "rule orders"),
		want(SecRuleProfit, 8*rcount, "rule profits"),
		want(SecRuleProfRe, 8*rcount, "rule prof_re"),
		want(SecRuleIDPool, RuleIDLen*rcount, "rule IDs"),
		want(SecRuleStrOff, 4*(rcount+1), "rule string offsets"),
		want(SecRuleExplainOff, 4*(rcount+1), "rule explain offsets"),
		want(SecRuleBlobOff, 8*(rcount+1), "rule blob offsets"),
	}
	for _, err := range checks {
		if err != nil {
			return nil, err
		}
	}
	trie, err := aliasTrie(sec, SecTrieItem, meta.TrieRootHi, rcount, "matcher trie")
	if err != nil {
		return nil, err
	}
	alt, err := aliasTrie(sec, SecAltItem, meta.AltRootHi, rcount, "alternates trie")
	if err != nil {
		return nil, err
	}

	m := &Model{
		a:    a,
		meta: meta,
		sec:  sec,
		exp:  expansions{off: alias[int32](sec(SecExpOff)), pool: alias[genID](sec(SecExpPool))},
		rt: RuleTable{
			BodyOff:   alias[int32](sec(SecRuleBodyOff)),
			BodyPool:  alias[genID](sec(SecRuleBodyPool)),
			Head:      alias[genID](sec(SecRuleHead)),
			HeadItem:  alias[int32](sec(SecRuleHeadItem)),
			HeadPromo: alias[int32](sec(SecRuleHeadPromo)),
			BodyCount: alias[int32](sec(SecRuleBodyCount)),
			Hits:      alias[int32](sec(SecRuleHits)),
			Order:     alias[int32](sec(SecRuleOrder)),
			Profit:    alias[float64](sec(SecRuleProfit)),
			ProfRe:    alias[float64](sec(SecRuleProfRe)),
			idPool:    sec(SecRuleIDPool),
			strOff:    alias[int32](sec(SecRuleStrOff)),
			strPool:   sec(SecRuleStrPool),
			explOff:   alias[int32](sec(SecRuleExplainOff)),
			explPool:  sec(SecRuleExplainPool),
			blobOff:   alias[int64](sec(SecRuleBlobOff)),
			blobPool:  sec(SecRuleBlobPool),
		},
		trie: trie,
		alt:  alt,
	}

	// O(1) pool bounds: first and last offsets must bracket the pool
	// exactly, so a truncated tail cannot produce an out-of-range slice
	// on the very first lookup.
	if rcount > 0 {
		if err := checkPoolBounds(m.rt.BodyOff, 4, secs[SecRuleBodyPool].len, "rule body"); err != nil {
			return nil, err
		}
		if err := checkPoolBounds(m.rt.strOff, 1, secs[SecRuleStrPool].len, "rule string"); err != nil {
			return nil, err
		}
		if err := checkPoolBounds(m.rt.explOff, 1, secs[SecRuleExplainPool].len, "rule explain"); err != nil {
			return nil, err
		}
		if err := checkPoolBounds64(m.rt.blobOff, secs[SecRuleBlobPool].len, "rule blob"); err != nil {
			return nil, err
		}
	}
	// The O(1) budget of parse ends here: the expansion-offset and
	// catalog scans are linear in the hierarchy and item count, so they
	// run in Verify — the once-per-staging O(file) gate — not per open.
	return m, nil
}

// aliasTrie aliases one seven-section flattened trie, checking the five
// node columns agree on the node count and that rule indices fit the
// element width.
func aliasTrie(sec func(int) []byte, base int, rootHi int32, rcount int, what string) (Trie, error) {
	n := len(sec(base)) / 4
	for i := base; i < base+5; i++ {
		if len(sec(i)) != 4*n {
			return Trie{}, errf("%s node columns disagree on size", what)
		}
	}
	if int(rootHi) < 0 || int(rootHi) > n {
		return Trie{}, errf("%s root block [0,%d) exceeds %d nodes", what, rootHi, n)
	}
	t := Trie{
		Item:     alias[genID](sec(base)),
		ChildLo:  alias[int32](sec(base + 1)),
		ChildHi:  alias[int32](sec(base + 2)),
		RuleLo:   alias[int32](sec(base + 3)),
		RuleHi:   alias[int32](sec(base + 4)),
		Rules:    alias[int32](sec(base + 5)),
		Defaults: alias[int32](sec(base + 6)),
		RootHi:   rootHi,
	}
	for _, d := range t.Defaults {
		if int(d) < 0 || int(d) >= rcount {
			return Trie{}, errf("%s default rule index %d outside the %d-rule table", what, d, rcount)
		}
	}
	return t, nil
}

func checkPoolBounds(off []int32, elem, poolLen int, what string) error {
	if off[0] != 0 || int(off[len(off)-1])*elem != poolLen {
		return errf("%s offsets [%d..%d] do not bracket their %d-byte pool", what, off[0], off[len(off)-1], poolLen)
	}
	return nil
}

func checkPoolBounds64(off []int64, poolLen int, what string) error {
	if off[0] != 0 || int(off[len(off)-1]) != poolLen {
		return errf("%s offsets [%d..%d] do not bracket their %d-byte pool", what, off[0], off[len(off)-1], poolLen)
	}
	return nil
}

// decodeMeta reads the fixed meta block.
func decodeMeta(b []byte) (Meta, error) {
	if len(b) != metaSize {
		return Meta{}, errf("meta section holds %d bytes, want %d", len(b), metaSize)
	}
	u32 := func(off int) int { return int(binary.LittleEndian.Uint32(b[off:])) }
	m := Meta{
		NumItems:     u32(0),
		NumPromos:    u32(4),
		NumRules:     u32(8),
		NumFinal:     u32(12),
		Generated:    u32(16),
		NonDominated: u32(20),
		TreeDepth:    u32(24),
	}
	flags := binary.LittleEndian.Uint32(b[28:])
	m.MOA = flags&metaFlagMOA != 0
	m.ProjectedProfit = lefloat(b[32:])
	m.TrieRootHi = int32(binary.LittleEndian.Uint32(b[40:]))
	m.AltRootHi = int32(binary.LittleEndian.Uint32(b[44:]))
	return m, nil
}

func encodeMeta(m Meta) []byte {
	b := make([]byte, metaSize)
	u32 := func(off, v int) { binary.LittleEndian.PutUint32(b[off:], uint32(v)) }
	u32(0, m.NumItems)
	u32(4, m.NumPromos)
	u32(8, m.NumRules)
	u32(12, m.NumFinal)
	u32(16, m.Generated)
	u32(20, m.NonDominated)
	u32(24, m.TreeDepth)
	flags := uint32(0)
	if m.MOA {
		flags |= metaFlagMOA
	}
	binary.LittleEndian.PutUint32(b[28:], flags)
	putLefloat(b[32:], m.ProjectedProfit)
	u32(40, int(m.TrieRootHi))
	u32(44, int(m.AltRootHi))
	return b
}

// Verify recomputes the whole-file checksum against the stored digest:
// the integrity gate every staging path runs once per new content
// hash. O(file size), unlike Open.
func (m *Model) Verify() error {
	data := m.a.data
	sum := sha256.Sum256(data[checksumStart:])
	if !bytes.Equal(sum[:], data[16:48]) {
		return errf("content checksum mismatch: header %.8x, content %.8x (file corrupt?)", data[16:24], sum[:8])
	}
	// Linear structural scans live here, not in parse, to keep Open O(1)
	// in model size. For a file the sealer wrote the checksum already
	// implies them; they exist so a hand-crafted file with a consistent
	// checksum still cannot push invalid offsets past the trust gate.
	if err := m.exp.validate(len(m.sec(SecExpPool))); err != nil {
		return err
	}
	return validateCatalog(m.meta, m.sec)
}

// ContentHash returns the stored whole-file checksum (hex) — the
// sealed model's identity for the watcher, the cluster, and dedup.
func (m *Model) ContentHash() string {
	return hex.EncodeToString(m.a.data[16:48])
}
