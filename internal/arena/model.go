package arena

import (
	"encoding/binary"
	"math"
	"sync"

	"profitmining/internal/hierarchy"
	"profitmining/internal/model"
)

// genID abbreviates the interned generalized-sale ID inside this
// package; sealed files store the same int32 values the space interned
// at build time (the expansion pool and the rule bodies come from one
// space, so they stay mutually consistent without the space itself).
type genID = hierarchy.GenID

// Model is the index-based view of one sealed arena: typed slices
// aliasing the mapping plus the lazily materialized catalog. It is
// immutable and safe for concurrent use; it keeps its Arena reachable,
// so views remain valid for the Model's lifetime.
type Model struct {
	a    *Arena
	meta Meta
	sec  func(int) []byte
	exp  expansions
	rt   RuleTable
	trie Trie
	alt  Trie

	catOnce sync.Once
	cat     *model.Catalog
	catErr  error
}

// Meta returns the sealed counts and build statistics.
func (m *Model) Meta() Meta { return m.meta }

// Catalog materializes the heap catalog on first call — O(items+promos)
// — and memoizes it. Deferring this is what keeps Open O(1) in model
// size: the hot serving path never touches the heap catalog, and the
// staging path pays the build exactly once per swapped-in model.
// Materialization re-screens the catalog sections' structural bounds
// (Verify also scans them, but a raw unverified open must not be able
// to panic here), and an error — impossible in a file that passed
// Verify — is memoized like success.
func (m *Model) Catalog() (*model.Catalog, error) {
	m.catOnce.Do(func() { m.cat, m.catErr = materializeCatalog(m.meta, m.sec) })
	return m.cat, m.catErr
}

// Expansions returns the per-promotion sale expansions as the shared
// hierarchy view, aliasing the mapping.
func (m *Model) Expansions() hierarchy.Expansions {
	return hierarchy.Expansions{Off: m.exp.off, Pool: m.exp.pool}
}

// Rules returns the columnar rule table.
func (m *Model) Rules() *RuleTable { return &m.rt }

// Trie returns the flattened matcher trie over the final rules.
func (m *Model) Trie() *Trie { return &m.trie }

// Alternates returns the flattened per-item alternates trie.
func (m *Model) Alternates() *Trie { return &m.alt }

// Arena returns the backing arena (for Close and Bytes).
func (m *Model) Arena() *Arena { return m.a }

// expansions is the aliased hierarchy.Expansions layout.
type expansions struct {
	off  []int32
	pool []genID
}

// validate bounds-checks the offset array once at open — O(promos) —
// so a structurally corrupt file cannot index outside the pool at
// serve time.
func (e expansions) validate(poolBytes int) error {
	n := poolBytes / 4
	prev := int32(0)
	for i, off := range e.off {
		if off < prev || int(off) > n {
			return errf("expansion offset %d at promo %d escapes its %d-entry pool", off, i, n)
		}
		prev = off
	}
	if len(e.off) > 0 && int(e.off[len(e.off)-1]) != n {
		return errf("expansion offsets end at %d, pool holds %d entries", e.off[len(e.off)-1], n)
	}
	return nil
}

// RuleTable is the columnar form of every servable rule: the final
// rules in MPF rank order (the first Meta.NumFinal entries) followed
// by the per-item alternates not already present. All slices alias the
// mapping; none may be modified.
type RuleTable struct {
	BodyOff   []int32
	BodyPool  []genID
	Head      []genID
	HeadItem  []int32
	HeadPromo []int32
	BodyCount []int32
	Hits      []int32
	Order     []int32
	Profit    []float64
	ProfRe    []float64

	idPool   []byte
	strOff   []int32
	strPool  []byte
	explOff  []int32
	explPool []byte
	blobOff  []int64
	blobPool []byte
}

// N returns the number of rules in the table.
func (t *RuleTable) N() int { return len(t.Head) }

// Body returns rule i's sorted body.
func (t *RuleTable) Body(i int32) []genID {
	return t.BodyPool[t.BodyOff[i]:t.BodyOff[i+1]]
}

// BodyLen returns len(body) for rule i without slicing.
//
//hot:path
func (t *RuleTable) BodyLen(i int32) int32 { return t.BodyOff[i+1] - t.BodyOff[i] }

// ID returns rule i's stable content-hash identity ("r"+16 hex,
// rules.StableID) as a zero-copy string over the mapping.
//
//hot:path
func (t *RuleTable) ID(i int32) string {
	return byteString(t.idPool[int(i)*RuleIDLen : (int(i)+1)*RuleIDLen])
}

// String returns rule i rendered with its measures, as
// rules.Rule.String produced it at seal time. Zero-copy.
func (t *RuleTable) String(i int32) string {
	return byteString(t.strPool[t.strOff[i]:t.strOff[i+1]])
}

// ExplainJoined returns rule i's explanation lines joined with '\n'
// (the covering-tree lineage rendered at seal time). Zero-copy.
func (t *RuleTable) ExplainJoined(i int32) string {
	return byteString(t.explPool[t.explOff[i]:t.explOff[i+1]])
}

// Blob returns rule i's pre-marshaled recommendation JSON, served
// verbatim by the HTTP layer. Must not be modified.
//
//hot:path
func (t *RuleTable) Blob(i int32) []byte {
	return t.blobPool[t.blobOff[i]:t.blobOff[i+1]]
}

// Outranks reports whether rule a outranks rule b under the MPF order
// of Definition 6 — the index twin of rules.Outranks, reading the
// sealed Prof_re column instead of recomputing the division.
//
//hot:path
func (t *RuleTable) Outranks(a, b int32) bool {
	ap, bp := t.ProfRe[a], t.ProfRe[b]
	if ap != bp { //lint:allow floatcmp -- rank comparators need exact comparison, as in rules.Outranks
		return ap > bp
	}
	if t.Hits[a] != t.Hits[b] {
		return t.Hits[a] > t.Hits[b]
	}
	if la, lb := t.BodyLen(a), t.BodyLen(b); la != lb {
		return la < lb
	}
	return t.Order[a] < t.Order[b]
}

// Trie is the sealed form of rules.Matcher's flattened trie: node i's
// children occupy nodes [ChildLo[i], ChildHi[i]) and its rules occupy
// Rules[RuleLo[i]:RuleHi[i]] as global rule-table indices. The root's
// children are [0, RootHi); Defaults lists the empty-body rules.
type Trie struct {
	Item                             []genID
	ChildLo, ChildHi, RuleLo, RuleHi []int32
	Rules                            []int32
	Defaults                         []int32
	RootHi                           int32
}

// validateCatalog bounds-checks the catalog sections at open —
// O(items+promos) with no allocations — so a structurally corrupt file
// fails Open loudly instead of handing out views that blow up on first
// materialization.
func validateCatalog(meta Meta, sec func(int) []byte) error {
	nameOff := alias[int32](sec(SecItemNameOff))
	poolLen := len(sec(SecItemNamePool))
	prev := int32(0)
	for i := 0; i < meta.NumItems; i++ {
		lo, hi := nameOff[i], nameOff[i+1]
		if lo < prev || hi <= lo || int(hi) > poolLen {
			return errf("item %d name offsets [%d,%d) escape the name pool or name an empty item", i+1, lo, hi)
		}
		prev = hi
	}
	for p, item := range alias[int32](sec(SecPromoItem)) {
		if item < 1 || int(item) > meta.NumItems {
			return errf("promo %d belongs to unknown item %d", p+1, item)
		}
	}
	return nil
}

// materializeCatalog rebuilds a *model.Catalog from the catalog
// sections. Promos are stored in global ID order, so AddPromo
// reproduces both the IDs and each item's ladder order exactly as the
// original catalog had them. Offsets and ranges are screened up front
// (redundantly with Verify, deliberately — see Catalog); beyond that,
// only name uniqueness needs checking here (the one property a map is
// needed for).
func materializeCatalog(meta Meta, sec func(int) []byte) (*model.Catalog, error) {
	if err := validateCatalog(meta, sec); err != nil {
		return nil, err
	}
	nameOff := alias[int32](sec(SecItemNameOff))
	namePool := sec(SecItemNamePool)
	targets := sec(SecItemTarget)
	promoItem := alias[int32](sec(SecPromoItem))
	econ := alias[float64](sec(SecPromoEcon))

	cat := model.NewCatalog()
	seen := make(map[string]bool, meta.NumItems)
	for i := 0; i < meta.NumItems; i++ {
		name := string(namePool[nameOff[i]:nameOff[i+1]])
		if seen[name] {
			return nil, errf("item %d duplicates the name %q", i+1, name)
		}
		seen[name] = true
		cat.AddItem(name, targets[i] != 0)
	}
	for p := 0; p < meta.NumPromos; p++ {
		cat.AddPromo(model.ItemID(promoItem[p]), econ[3*p], econ[3*p+1], econ[3*p+2])
	}
	return cat, nil
}

func lefloat(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func putLefloat(b []byte, v float64) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
}
