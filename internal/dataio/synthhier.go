package dataio

import (
	"fmt"

	"profitmining/internal/model"
)

// SyntheticHierarchySpec builds a balanced multi-level concept hierarchy
// over a catalog's non-target items in serializable form: leaves grouped
// fanout-at-a-time under level-1 concepts ("g1-0001", …), grouped again
// ("g2-0001", …) until a level fits under the root. It provides the
// multi-level generalization structure of [SA95, HF95] for synthetic
// datasets, whose catalogs are otherwise flat.
func SyntheticHierarchySpec(cat *model.Catalog, fanout int) *HierarchySpec {
	if fanout < 2 {
		panic(fmt.Sprintf("dataio: SyntheticHierarchySpec fanout %d must be at least 2", fanout))
	}
	var nonTargets []model.ItemID
	for _, it := range cat.Items() {
		if !it.Target {
			nonTargets = append(nonTargets, it.ID)
		}
	}
	sizes := []int{ceilDiv(len(nonTargets), fanout)}
	for sizes[len(sizes)-1] > fanout {
		sizes = append(sizes, ceilDiv(sizes[len(sizes)-1], fanout))
	}

	spec := &HierarchySpec{Placements: map[string][]string{}}
	name := func(level, idx int) string { return fmt.Sprintf("g%d-%04d", level, idx+1) }
	for li := len(sizes) - 1; li >= 0; li-- {
		level := li + 1
		for i := 0; i < sizes[li]; i++ {
			c := ConceptSpec{Name: name(level, i)}
			if li < len(sizes)-1 {
				c.Parents = []string{name(level+1, i/fanout)}
			}
			spec.Concepts = append(spec.Concepts, c)
		}
	}
	for j, item := range nonTargets {
		spec.Placements[cat.Item(item).Name] = []string{name(1, j/fanout)}
	}
	return spec
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
