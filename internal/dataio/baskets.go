package dataio

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"profitmining/internal/model"
)

// BasketOptions configures conversion of raw market-basket data (the
// classic one-transaction-per-line, whitespace-separated-items format of
// public retail datasets) into a profit-mining dataset. Such files carry
// no price information, so promotion ladders are synthesized the same way
// as for the paper's datasets.
type BasketOptions struct {
	// Targets names the tokens to treat as target items. Transactions
	// without any target token are dropped; the first target token in a
	// line becomes the target sale and the remaining tokens the basket.
	// Required.
	Targets []string

	// TargetCosts optionally assigns costs to target tokens (default 1).
	// Non-target costs are irrelevant to every profit measure.
	TargetCosts map[string]float64

	// NumPrices and PriceStep define the synthesized ladder
	// P_j = (1 + j·PriceStep)·cost (defaults 4 and 0.10).
	NumPrices int
	PriceStep float64

	// Seed drives the uniform price selection per sale.
	Seed int64
}

// ReadBaskets parses raw basket data into a dataset. Tokens become item
// names verbatim; every item gets the synthesized promotion ladder and
// every sale picks one of the prices uniformly at random with unit
// quantity, matching the paper's treatment of the IBM generator output.
func ReadBaskets(r io.Reader, opts BasketOptions) (*model.Dataset, error) {
	if len(opts.Targets) == 0 {
		return nil, fmt.Errorf("dataio: ReadBaskets needs at least one target token")
	}
	if opts.NumPrices == 0 {
		opts.NumPrices = 4
	}
	if opts.NumPrices < 1 {
		return nil, fmt.Errorf("dataio: NumPrices %d must be at least 1", opts.NumPrices)
	}
	if opts.PriceStep == 0 { //lint:allow floatcmp -- exact zero is the unset-option sentinel; explicit steps are validated below
		opts.PriceStep = 0.10
	}
	if opts.PriceStep <= 0 {
		return nil, fmt.Errorf("dataio: PriceStep %g must be positive", opts.PriceStep)
	}

	isTarget := make(map[string]bool, len(opts.Targets))
	for _, t := range opts.Targets {
		if t == "" {
			return nil, fmt.Errorf("dataio: empty target token")
		}
		isTarget[t] = true
	}

	cat := model.NewCatalog()
	items := map[string]model.ItemID{}
	promos := map[string][]model.PromoID{}
	intern := func(token string) model.ItemID {
		if id, ok := items[token]; ok {
			return id
		}
		target := isTarget[token]
		cost := 1.0
		if target && opts.TargetCosts != nil {
			if c, ok := opts.TargetCosts[token]; ok {
				cost = c
			}
		}
		id := cat.AddItem(token, target)
		items[token] = id
		ladder := make([]model.PromoID, opts.NumPrices)
		for j := 0; j < opts.NumPrices; j++ {
			price := (1 + float64(j+1)*opts.PriceStep) * cost
			ladder[j] = cat.AddPromo(id, price, cost, 1)
		}
		promos[token] = ladder
		return id
	}
	// Intern targets first so their IDs are stable regardless of where
	// they first appear in the data.
	for _, t := range opts.Targets {
		intern(t)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	ds := &model.Dataset{Catalog: cat}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	dropped := 0
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		var txn model.Transaction
		haveTarget := false
		seen := map[string]bool{}
		for _, tok := range fields {
			if seen[tok] {
				continue
			}
			seen[tok] = true
			id := intern(tok)
			sale := model.Sale{
				Item:  id,
				Promo: promos[tok][rng.Intn(opts.NumPrices)],
				Qty:   1,
			}
			if isTarget[tok] {
				if !haveTarget {
					txn.Target = sale
					haveTarget = true
				}
				// Additional target tokens are dropped: the paper's
				// framework has one target sale per transaction.
				continue
			}
			txn.NonTarget = append(txn.NonTarget, sale)
		}
		if !haveTarget {
			dropped++
			continue
		}
		ds.Transactions = append(ds.Transactions, txn)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	if len(ds.Transactions) == 0 {
		return nil, fmt.Errorf("dataio: no usable transactions (%d lines lacked a target token)", dropped)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}
