// Package dataio serializes profit-mining datasets for the command-line
// tools. The on-disk format is line-oriented JSON: the first line is a
// header object carrying the catalog (items, promotion codes) and an
// optional concept hierarchy; every following line is one transaction.
// The format is self-contained, appendable and streamable, which matters
// for the paper-scale 100K-transaction datasets.
package dataio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"profitmining/internal/hierarchy"
	"profitmining/internal/model"
)

// header is the first line of a dataset file.
type header struct {
	Format    string         `json:"format"` // always "profitmining/v1"
	Items     []ItemJSON     `json:"items"`
	Promos    []PromoJSON    `json:"promos"`
	Hierarchy *HierarchySpec `json:"hierarchy,omitempty"`
}

const formatV1 = "profitmining/v1"

// ItemJSON is the serialized form of a catalog item (shared with model
// files, internal/modelio).
type ItemJSON struct {
	Name   string `json:"name"`
	Target bool   `json:"target,omitempty"`
}

// PromoJSON is the serialized form of a promotion code.
type PromoJSON struct {
	Item    int32   `json:"item"` // 1-based item ID
	Price   float64 `json:"price"`
	Cost    float64 `json:"cost"`
	Packing float64 `json:"packing"`
}

// EncodeCatalog flattens a catalog for serialization.
func EncodeCatalog(cat *model.Catalog) ([]ItemJSON, []PromoJSON) {
	var items []ItemJSON
	var promos []PromoJSON
	for _, it := range cat.Items() {
		items = append(items, ItemJSON{Name: it.Name, Target: it.Target})
		for _, pid := range cat.Promos(it.ID) {
			p := cat.Promo(pid)
			promos = append(promos, PromoJSON{
				Item: int32(it.ID), Price: p.Price, Cost: p.Cost, Packing: p.Packing,
			})
		}
	}
	return items, promos
}

// DecodeCatalog rebuilds a catalog from its serialized form.
func DecodeCatalog(items []ItemJSON, promos []PromoJSON) (*model.Catalog, error) {
	cat := model.NewCatalog()
	for _, it := range items {
		if it.Name == "" {
			return nil, fmt.Errorf("dataio: item with empty name")
		}
		if _, dup := cat.ItemByName(it.Name); dup {
			return nil, fmt.Errorf("dataio: duplicate item %q", it.Name)
		}
		cat.AddItem(it.Name, it.Target)
	}
	for i, p := range promos {
		if p.Item < 1 || int(p.Item) > cat.NumItems() {
			return nil, fmt.Errorf("dataio: promo %d references unknown item %d", i, p.Item)
		}
		cat.AddPromo(model.ItemID(p.Item), p.Price, p.Cost, p.Packing)
	}
	return cat, nil
}

type saleJSON struct {
	Item  int32   `json:"i"`
	Promo int32   `json:"p"`
	Qty   float64 `json:"q"`
}

type txnJSON struct {
	NonTarget []saleJSON `json:"nt"`
	Target    saleJSON   `json:"t"`
}

// HierarchySpec is the serializable form of a concept hierarchy: concepts
// in definition order (parents must precede children) and item placements
// by item name.
type HierarchySpec struct {
	Concepts   []ConceptSpec       `json:"concepts,omitempty"`
	Placements map[string][]string `json:"placements,omitempty"`
}

// ConceptSpec is one concept and its parent concepts.
type ConceptSpec struct {
	Name    string   `json:"name"`
	Parents []string `json:"parents,omitempty"`
}

// Builder reconstructs a hierarchy.Builder over the catalog from the
// spec. hierarchy.Builder panics on malformed construction (it is meant
// for trusted code); data-driven specs translate those panics to errors.
func (h *HierarchySpec) Builder(cat *model.Catalog) (b *hierarchy.Builder, err error) {
	defer func() {
		if r := recover(); r != nil {
			b, err = nil, fmt.Errorf("dataio: invalid hierarchy: %v", r)
		}
	}()
	b = hierarchy.NewBuilder(cat)
	if h == nil {
		return b, nil
	}
	for _, c := range h.Concepts {
		b.AddConcept(c.Name, c.Parents...)
	}
	for name, parents := range h.Placements {
		id, ok := cat.ItemByName(name)
		if !ok {
			return nil, fmt.Errorf("dataio: hierarchy places unknown item %q", name)
		}
		b.PlaceItem(id, parents...)
	}
	return b, nil
}

// Write serializes the dataset (and optional hierarchy) to w.
func Write(w io.Writer, ds *model.Dataset, spec *HierarchySpec) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)

	h := header{Format: formatV1, Hierarchy: spec}
	h.Items, h.Promos = EncodeCatalog(ds.Catalog)
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("dataio: writing header: %w", err)
	}
	for i := range ds.Transactions {
		t := &ds.Transactions[i]
		tj := txnJSON{Target: saleJSON{int32(t.Target.Item), int32(t.Target.Promo), t.Target.Qty}}
		for _, s := range t.NonTarget {
			tj.NonTarget = append(tj.NonTarget, saleJSON{int32(s.Item), int32(s.Promo), s.Qty})
		}
		if err := enc.Encode(tj); err != nil {
			return fmt.Errorf("dataio: writing transaction %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read deserializes a dataset written by Write and validates it.
func Read(r io.Reader) (*model.Dataset, *HierarchySpec, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)

	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, nil, fmt.Errorf("dataio: reading header: %w", err)
		}
		return nil, nil, fmt.Errorf("dataio: empty input")
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, nil, fmt.Errorf("dataio: parsing header: %w", err)
	}
	if h.Format != formatV1 {
		return nil, nil, fmt.Errorf("dataio: unsupported format %q", h.Format)
	}

	cat, err := DecodeCatalog(h.Items, h.Promos)
	if err != nil {
		return nil, nil, err
	}

	ds := &model.Dataset{Catalog: cat}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var tj txnJSON
		if err := json.Unmarshal(sc.Bytes(), &tj); err != nil {
			return nil, nil, fmt.Errorf("dataio: line %d: %w", line, err)
		}
		t := model.Transaction{
			Target: model.Sale{Item: model.ItemID(tj.Target.Item), Promo: model.PromoID(tj.Target.Promo), Qty: tj.Target.Qty},
		}
		for _, s := range tj.NonTarget {
			t.NonTarget = append(t.NonTarget, model.Sale{Item: model.ItemID(s.Item), Promo: model.PromoID(s.Promo), Qty: s.Qty})
		}
		ds.Transactions = append(ds.Transactions, t)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("dataio: %w", err)
	}
	if err := ds.Validate(); err != nil {
		return nil, nil, err
	}
	return ds, h.Hierarchy, nil
}

// Save writes the dataset to a file.
func Save(path string, ds *model.Dataset, spec *HierarchySpec) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, ds, spec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a dataset from a file.
func Load(path string) (*model.Dataset, *HierarchySpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return Read(f)
}
