package dataio_test

import (
	"bytes"

	"math"
	"path/filepath"
	"profitmining/internal/dataio"
	"strings"
	"testing"

	"profitmining/internal/datagen"
	"profitmining/internal/hierarchy"
	"profitmining/internal/model"
	"profitmining/internal/quest"
)

func sampleDataset(t *testing.T) *model.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.DatasetIConfig(quest.Config{
		NumTransactions: 200,
		NumItems:        20,
		AvgTxnLen:       4,
		AvgPatternLen:   2,
		NumPatterns:     15,
		Seed:            5,
	}, 9))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRoundTrip(t *testing.T) {
	ds := sampleDataset(t)
	var buf bytes.Buffer
	if err := dataio.Write(&buf, ds, nil); err != nil {
		t.Fatal(err)
	}
	got, spec, err := dataio.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if spec != nil {
		t.Error("round trip invented a hierarchy")
	}
	if got.Catalog.NumItems() != ds.Catalog.NumItems() || got.Catalog.NumPromos() != ds.Catalog.NumPromos() {
		t.Fatalf("catalog size mismatch: %d/%d vs %d/%d",
			got.Catalog.NumItems(), got.Catalog.NumPromos(), ds.Catalog.NumItems(), ds.Catalog.NumPromos())
	}
	for _, it := range ds.Catalog.Items() {
		g := got.Catalog.Item(it.ID)
		if g.Name != it.Name || g.Target != it.Target {
			t.Fatalf("item %d mismatch: %+v vs %+v", it.ID, g, it)
		}
		for i, pid := range ds.Catalog.Promos(it.ID) {
			want := ds.Catalog.Promo(pid)
			have := got.Catalog.Promo(got.Catalog.Promos(it.ID)[i])
			if math.Abs(want.Price-have.Price) > 1e-12 || math.Abs(want.Cost-have.Cost) > 1e-12 || want.Packing != have.Packing {
				t.Fatalf("promo mismatch: %+v vs %+v", have, want)
			}
		}
	}
	if len(got.Transactions) != len(ds.Transactions) {
		t.Fatalf("transactions: %d vs %d", len(got.Transactions), len(ds.Transactions))
	}
	for i := range ds.Transactions {
		a, b := ds.Transactions[i], got.Transactions[i]
		if a.Target != b.Target || len(a.NonTarget) != len(b.NonTarget) {
			t.Fatalf("transaction %d mismatch", i)
		}
		for j := range a.NonTarget {
			if a.NonTarget[j] != b.NonTarget[j] {
				t.Fatalf("transaction %d sale %d mismatch", i, j)
			}
		}
	}
	// Recorded profit survives the trip exactly.
	if math.Abs(got.RecordedProfit()-ds.RecordedProfit()) > 1e-9 {
		t.Error("recorded profit changed in round trip")
	}
}

func TestRoundTripWithHierarchy(t *testing.T) {
	g := datagen.NewGrocery(50, 3)
	spec := &dataio.HierarchySpec{
		Concepts: []dataio.ConceptSpec{
			{Name: "Cosmetics"},
			{Name: "Food"},
			{Name: "Meat", Parents: []string{"Food"}},
		},
		Placements: map[string][]string{
			"Perfume":       {"Cosmetics"},
			"FlakedChicken": {"Meat"},
		},
	}
	var buf bytes.Buffer
	if err := dataio.Write(&buf, g.Dataset, spec); err != nil {
		t.Fatal(err)
	}
	ds, gotSpec, err := dataio.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotSpec == nil || len(gotSpec.Concepts) != 3 {
		t.Fatalf("hierarchy lost: %+v", gotSpec)
	}
	b, err := gotSpec.Builder(ds.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	space, err := b.Compile(hierarchy.Options{MOA: true})
	if err != nil {
		t.Fatal(err)
	}
	fc, _ := ds.Catalog.ItemByName("FlakedChicken")
	// Meat must generalize FlakedChicken in the rebuilt space.
	meat := findNode(space, "Meat")
	if meat < 0 || !space.GeneralizesOrEqual(hierarchy.GenID(meat), space.ItemNode(fc)) {
		t.Error("rebuilt hierarchy lost the Meat ⊃ FlakedChicken edge")
	}
}

func findNode(s *hierarchy.Space, name string) int {
	for g := 0; g < s.NumNodes(); g++ {
		if s.Name(hierarchy.GenID(g)) == name {
			return g
		}
	}
	return -1
}

func TestSaveLoad(t *testing.T) {
	ds := sampleDataset(t)
	path := filepath.Join(t.TempDir(), "data.pmjl")
	if err := dataio.Save(path, ds, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := dataio.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Transactions) != len(ds.Transactions) {
		t.Fatal("Load lost transactions")
	}
	if _, _, err := dataio.Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("loading a missing file must fail")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"garbage header", "not json\n"},
		{"wrong format", `{"format":"other/v9"}` + "\n"},
		{"bad promo item", `{"format":"profitmining/v1","items":[{"name":"A"}],"promos":[{"item":7,"price":1,"cost":0,"packing":1}]}` + "\n"},
		{"empty item name", `{"format":"profitmining/v1","items":[{"name":""}]}` + "\n"},
		{"duplicate item", `{"format":"profitmining/v1","items":[{"name":"A"},{"name":"A"}]}` + "\n"},
		{"garbage txn", `{"format":"profitmining/v1","items":[{"name":"A","target":true}],"promos":[{"item":1,"price":1,"cost":0,"packing":1}]}` + "\nnope\n"},
		{"invalid txn", `{"format":"profitmining/v1","items":[{"name":"A","target":true}],"promos":[{"item":1,"price":1,"cost":0,"packing":1}]}` + "\n" + `{"nt":[],"t":{"i":1,"p":1,"q":-2}}` + "\n"},
	}
	for _, tc := range cases {
		if _, _, err := dataio.Read(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestHierarchySpecErrors(t *testing.T) {
	cat := model.NewCatalog()
	it := cat.AddItem("A", true)
	cat.AddPromo(it, 1, 0, 1)

	bad := &dataio.HierarchySpec{Concepts: []dataio.ConceptSpec{{Name: "C", Parents: []string{"Missing"}}}}
	if _, err := bad.Builder(cat); err == nil {
		t.Error("unknown parent must fail")
	}
	unknown := &dataio.HierarchySpec{Placements: map[string][]string{"Ghost": nil}}
	if _, err := unknown.Builder(cat); err == nil {
		t.Error("unknown placement item must fail")
	}
	var nilSpec *dataio.HierarchySpec
	if _, err := nilSpec.Builder(cat); err != nil {
		t.Errorf("nil spec should build an empty hierarchy: %v", err)
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	ds := sampleDataset(t)
	var buf bytes.Buffer
	if err := dataio.Write(&buf, ds, nil); err != nil {
		t.Fatal(err)
	}
	withBlank := strings.Replace(buf.String(), "\n", "\n\n", 1)
	got, _, err := dataio.Read(strings.NewReader(withBlank))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Transactions) != len(ds.Transactions) {
		t.Error("blank line changed transaction count")
	}
}
