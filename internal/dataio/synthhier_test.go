package dataio_test

import (
	"path/filepath"
	"testing"

	"profitmining/internal/dataio"
	"profitmining/internal/hierarchy"
	"profitmining/internal/model"
)

func smallCatalog(t *testing.T, nonTargets int) *model.Catalog {
	t.Helper()
	cat := model.NewCatalog()
	for i := 0; i < nonTargets; i++ {
		id := cat.AddItem(string(rune('a'+i))+"-item", false)
		cat.AddPromo(id, 1, 0.5, 1)
	}
	tgt := cat.AddItem("tgt", true)
	cat.AddPromo(tgt, 5, 2, 1)
	return cat
}

func TestSyntheticHierarchySpec(t *testing.T) {
	cat := smallCatalog(t, 9)
	spec := dataio.SyntheticHierarchySpec(cat, 3)
	// 9 items → 3 level-1 concepts (≤ fanout: one level).
	if len(spec.Concepts) != 3 {
		t.Fatalf("concepts = %d, want 3", len(spec.Concepts))
	}
	if len(spec.Placements) != 9 {
		t.Fatalf("placements = %d, want 9", len(spec.Placements))
	}
	// The spec compiles against its own catalog.
	b, err := spec.Builder(cat)
	if err != nil {
		t.Fatal(err)
	}
	space, err := b.Compile(hierarchy.Options{MOA: true})
	if err != nil {
		t.Fatal(err)
	}
	// Target stays a child of the root.
	tgt, _ := cat.ItemByName("tgt")
	for _, a := range space.Ancestors(space.ItemNode(tgt)) {
		if space.Kind(a) == hierarchy.KindConcept {
			t.Error("target placed under a concept")
		}
	}
}

func TestSyntheticHierarchySpecMultiLevel(t *testing.T) {
	cat := smallCatalog(t, 20)
	spec := dataio.SyntheticHierarchySpec(cat, 3)
	// 20 items → 7 level-1 + 3 level-2 concepts.
	if len(spec.Concepts) != 10 {
		t.Fatalf("concepts = %d, want 10", len(spec.Concepts))
	}
	withParents := 0
	for _, c := range spec.Concepts {
		if len(c.Parents) > 0 {
			withParents++
		}
	}
	if withParents != 7 {
		t.Errorf("level-1 concepts with parents = %d, want 7", withParents)
	}
}

func TestSyntheticHierarchySpecPanics(t *testing.T) {
	cat := smallCatalog(t, 4)
	defer func() {
		if recover() == nil {
			t.Error("fanout 1 must panic")
		}
	}()
	dataio.SyntheticHierarchySpec(cat, 1)
}

func TestSaveErrorPaths(t *testing.T) {
	ds := sampleDataset(t)
	// Unwritable destination (directory path).
	dir := t.TempDir()
	if err := dataio.Save(dir, ds, nil); err == nil {
		t.Error("saving to a directory path must fail")
	}
	// Nested missing directory.
	if err := dataio.Save(filepath.Join(dir, "no", "such", "dir", "f"), ds, nil); err == nil {
		t.Error("saving into a missing directory must fail")
	}
}
