package dataio_test

import (
	"bytes"

	"profitmining/internal/dataio"
	"strings"
	"testing"

	"profitmining/internal/datagen"
	"profitmining/internal/quest"
)

// FuzzRead asserts the file parser's robustness contract: arbitrary input
// must produce a dataset or an error, never a panic, and anything the
// parser accepts must pass model validation (Read validates internally).
func FuzzRead(f *testing.F) {
	// Seed with a real file and characteristic corruptions.
	ds, err := datagen.Generate(datagen.DatasetIConfig(quest.Config{
		NumTransactions: 20, NumItems: 10, AvgTxnLen: 3, Seed: 1,
	}, 2))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dataio.Write(&buf, ds, nil); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add(valid)
	f.Add("")
	f.Add("{}\n")
	f.Add(`{"format":"profitmining/v1","items":[{"name":"A","target":true}],"promos":[{"item":1,"price":1,"cost":0,"packing":1}]}` + "\n" + `{"nt":[],"t":{"i":1,"p":1,"q":1}}` + "\n")
	f.Add(strings.Replace(valid, `"q":1`, `"q":-1`, 1))
	f.Add(strings.Replace(valid, `"item":1`, `"item":99`, 1))
	f.Add(valid + "garbage\n")

	f.Fuzz(func(t *testing.T, input string) {
		ds, _, err := dataio.Read(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted input round-trips.
		var out bytes.Buffer
		if err := dataio.Write(&out, ds, nil); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		again, _, err := dataio.Read(&out)
		if err != nil {
			t.Fatalf("round trip of accepted input failed: %v", err)
		}
		if len(again.Transactions) != len(ds.Transactions) {
			t.Fatal("round trip changed transaction count")
		}
	})
}
