package dataio_test

import (
	"strings"
	"testing"

	"profitmining/internal/dataio"
)

const basketFile = `milk bread chips
beer chips
milk bread
beer diapers chips
milk chips bread
`

func TestReadBaskets(t *testing.T) {
	ds, err := dataio.ReadBaskets(strings.NewReader(basketFile), dataio.BasketOptions{
		Targets:     []string{"chips"},
		TargetCosts: map[string]float64{"chips": 2},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Line 3 has no target → dropped; 4 usable transactions.
	if len(ds.Transactions) != 4 {
		t.Fatalf("transactions = %d, want 4", len(ds.Transactions))
	}
	chips, ok := ds.Catalog.ItemByName("chips")
	if !ok || !ds.Catalog.Item(chips).Target {
		t.Fatal("chips not interned as a target")
	}
	// Ladder: 4 prices over cost 2 → 2.2, 2.4, 2.6, 2.8.
	ladder := ds.Catalog.Promos(chips)
	if len(ladder) != 4 {
		t.Fatalf("chips ladder = %d promos", len(ladder))
	}
	if p := ds.Catalog.Promo(ladder[0]); p.Price != 2.2 || p.Cost != 2 {
		t.Errorf("first rung = %+v", p)
	}
	for i := range ds.Transactions {
		tr := &ds.Transactions[i]
		if tr.Target.Item != chips {
			t.Errorf("transaction %d target = %d", i, tr.Target.Item)
		}
		for _, s := range tr.NonTarget {
			if ds.Catalog.Item(s.Item).Target {
				t.Error("target token leaked into a basket")
			}
		}
	}
}

func TestReadBasketsDedupAndMultiTarget(t *testing.T) {
	// Repeated tokens are deduplicated; extra target tokens are dropped
	// (one target sale per transaction, per the paper's framework).
	ds, err := dataio.ReadBaskets(strings.NewReader("beer beer chips cola chips\n"), dataio.BasketOptions{
		Targets: []string{"chips", "cola"},
		Seed:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := ds.Transactions[0]
	if len(tr.NonTarget) != 1 {
		t.Errorf("basket = %d sales, want 1 (deduplicated beer)", len(tr.NonTarget))
	}
	if name := ds.Catalog.Item(tr.Target.Item).Name; name != "chips" {
		t.Errorf("target = %s, want the first target token", name)
	}
}

func TestReadBasketsErrors(t *testing.T) {
	if _, err := dataio.ReadBaskets(strings.NewReader("a b\n"), dataio.BasketOptions{}); err == nil {
		t.Error("missing targets must fail")
	}
	if _, err := dataio.ReadBaskets(strings.NewReader("a b\n"), dataio.BasketOptions{Targets: []string{"zzz"}}); err == nil {
		t.Error("no usable transactions must fail")
	}
	if _, err := dataio.ReadBaskets(strings.NewReader("a b\n"), dataio.BasketOptions{Targets: []string{""}}); err == nil {
		t.Error("empty target token must fail")
	}
	if _, err := dataio.ReadBaskets(strings.NewReader("a b\n"), dataio.BasketOptions{Targets: []string{"b"}, NumPrices: -1}); err == nil {
		t.Error("bad NumPrices must fail")
	}
	if _, err := dataio.ReadBaskets(strings.NewReader("a b\n"), dataio.BasketOptions{Targets: []string{"b"}, PriceStep: -0.5}); err == nil {
		t.Error("bad PriceStep must fail")
	}
}

func TestReadBasketsEndToEnd(t *testing.T) {
	// The loaded dataset feeds the whole pipeline: serialize it and read
	// it back through the dataset format.
	ds, err := dataio.ReadBaskets(strings.NewReader(basketFile), dataio.BasketOptions{
		Targets: []string{"chips"},
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := dataio.Write(&sb, ds, nil); err != nil {
		t.Fatal(err)
	}
	again, _, err := dataio.Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Transactions) != len(ds.Transactions) {
		t.Error("basket dataset did not survive the dataset format")
	}
}
