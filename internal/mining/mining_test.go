package mining

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"profitmining/internal/hierarchy"
	"profitmining/internal/model"
	"profitmining/internal/rules"
)

// fixture: non-target items A (prices 1, 2), B (price 1), C (price 1) and
// target T (prices 5, 6; cost 3).
type fixture struct {
	cat        *model.Catalog
	a, b, c, t model.ItemID
	a1, a2     model.PromoID
	b1, c1     model.PromoID
	t5, t6     model.PromoID
	space      *hierarchy.Space
}

func newFixture(tb testing.TB, moa bool) *fixture {
	tb.Helper()
	f := &fixture{cat: model.NewCatalog()}
	f.a = f.cat.AddItem("A", false)
	f.a1 = f.cat.AddPromo(f.a, 1, 0.5, 1)
	f.a2 = f.cat.AddPromo(f.a, 2, 0.5, 1)
	f.b = f.cat.AddItem("B", false)
	f.b1 = f.cat.AddPromo(f.b, 1, 0.5, 1)
	f.c = f.cat.AddItem("C", false)
	f.c1 = f.cat.AddPromo(f.c, 1, 0.5, 1)
	f.t = f.cat.AddItem("T", true)
	f.t5 = f.cat.AddPromo(f.t, 5, 3, 1)
	f.t6 = f.cat.AddPromo(f.t, 6, 3, 1)
	f.space = hierarchy.Flat(f.cat, hierarchy.Options{MOA: moa})
	return f
}

func (f *fixture) txn(target model.PromoID, qty float64, nonTarget ...model.PromoID) model.Transaction {
	t := model.Transaction{Target: model.Sale{Item: f.t, Promo: target, Qty: qty}}
	for _, p := range nonTarget {
		t.NonTarget = append(t.NonTarget, model.Sale{Item: f.cat.Promo(p).Item, Promo: p, Qty: 1})
	}
	return t
}

func findRule(t *testing.T, res *Result, s *hierarchy.Space, bodyNames []string, headName string) *rules.Rule {
	t.Helper()
	for _, r := range res.Rules {
		if s.Name(r.Head) != headName || len(r.Body) != len(bodyNames) {
			continue
		}
		got := make([]string, len(r.Body))
		for i, g := range r.Body {
			got[i] = s.Name(g)
		}
		sort.Strings(got)
		want := append([]string(nil), bodyNames...)
		sort.Strings(want)
		same := true
		for i := range got {
			if got[i] != want[i] {
				same = false
			}
		}
		if same {
			return r
		}
	}
	return nil
}

func TestMineSimpleCounts(t *testing.T) {
	f := newFixture(t, true)
	// 4 transactions: {A@2} → T@6 twice, {A@1} → T@5 once, {B@1} → T@5 once.
	txns := []model.Transaction{
		f.txn(f.t6, 1, f.a2),
		f.txn(f.t6, 1, f.a2),
		f.txn(f.t5, 1, f.a1),
		f.txn(f.t5, 1, f.b1),
	}
	res, err := Mine(f.space, txns, Options{MinSupportCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := f.space

	// Rule {A} → ⟨T,$5⟩: body matches 3 txns (all with A); hits all 3
	// under MOA ($5 ⪯ both recorded prices); profit = 3 × (5−3) = 6.
	r := findRule(t, res, s, []string{"A"}, "⟨T,$5⟩")
	if r == nil {
		t.Fatal("rule {A} → ⟨T,$5⟩ not generated")
	}
	if r.BodyCount != 3 || r.HitCount != 3 || math.Abs(r.Profit-6) > 1e-9 {
		t.Errorf("{A}→⟨T,$5⟩ = N%d hits%d prof%g, want 3/3/6", r.BodyCount, r.HitCount, r.Profit)
	}
	if math.Abs(r.ProfRe()-2) > 1e-9 {
		t.Errorf("ProfRe = %g, want 2", r.ProfRe())
	}

	// Rule {A} → ⟨T,$6⟩: hits only the two recorded at $6; profit 2×3.
	r = findRule(t, res, s, []string{"A"}, "⟨T,$6⟩")
	if r == nil || r.BodyCount != 3 || r.HitCount != 2 || math.Abs(r.Profit-6) > 1e-9 {
		t.Fatalf("{A}→⟨T,$6⟩ = %+v, want N3 hits2 prof6", r)
	}

	// Rule {⟨A,$1⟩} → …: under MOA the $1 node matches all three A sales?
	// No: ⟨A,$1⟩ generalizes sales at $1 and $2 (more favorable), so body
	// count is 3.
	r = findRule(t, res, s, []string{"⟨A,$1⟩"}, "⟨T,$5⟩")
	if r == nil || r.BodyCount != 3 {
		t.Fatalf("{⟨A,$1⟩}→⟨T,$5⟩ = %+v, want N3", r)
	}
	// The exact-price node ⟨A,$2⟩ matches only the two $2 sales.
	r = findRule(t, res, s, []string{"⟨A,$2⟩"}, "⟨T,$6⟩")
	if r == nil || r.BodyCount != 2 || r.HitCount != 2 {
		t.Fatalf("{⟨A,$2⟩}→⟨T,$6⟩ = %+v, want N2 hits2", r)
	}
}

func TestMineDefaultRule(t *testing.T) {
	f := newFixture(t, true)
	txns := []model.Transaction{
		f.txn(f.t6, 1, f.a2),
		f.txn(f.t6, 1, f.b1),
		f.txn(f.t5, 1, f.c1),
	}
	res, err := Mine(f.space, txns, Options{MinSupportCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Default
	if d == nil || !d.IsDefault() {
		t.Fatal("no default rule")
	}
	if d.BodyCount != 3 {
		t.Errorf("default BodyCount = %d, want 3", d.BodyCount)
	}
	// ⟨T,$5⟩ hits all 3 (profit 6); ⟨T,$6⟩ hits 2 (profit 6). Ties on
	// profit break by hits: $5 wins.
	if f.space.Name(d.Head) != "⟨T,$5⟩" {
		t.Errorf("default head = %s, want ⟨T,$5⟩", f.space.Name(d.Head))
	}
	if d.HitCount != 3 || math.Abs(d.Profit-6) > 1e-9 {
		t.Errorf("default = hits%d prof%g, want 3/6", d.HitCount, d.Profit)
	}
	// Default rule is ordered last.
	for _, r := range res.Rules {
		if r.Order >= d.Order {
			t.Errorf("rule order %d not before default order %d", r.Order, d.Order)
		}
	}
}

func TestMineNoMOAExactHits(t *testing.T) {
	f := newFixture(t, false)
	txns := []model.Transaction{
		f.txn(f.t6, 1, f.a2),
		f.txn(f.t6, 1, f.a2),
		f.txn(f.t5, 1, f.a1),
	}
	res, err := Mine(f.space, txns, Options{MinSupportCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Without MOA, ⟨T,$5⟩ hits only the $5 transaction.
	r := findRule(t, res, f.space, []string{"A"}, "⟨T,$5⟩")
	if r == nil || r.HitCount != 1 {
		t.Fatalf("{A}→⟨T,$5⟩ = %+v, want hits1 without MOA", r)
	}
	// And ⟨A,$1⟩ matches only the $1 sale.
	r2 := findRule(t, res, f.space, []string{"⟨A,$1⟩"}, "⟨T,$5⟩")
	if r2 == nil || r2.BodyCount != 1 {
		t.Fatalf("{⟨A,$1⟩} body count = %+v, want 1 without MOA", r2)
	}
}

func TestMineMinSupportPrunes(t *testing.T) {
	f := newFixture(t, true)
	var txns []model.Transaction
	for i := 0; i < 10; i++ {
		txns = append(txns, f.txn(f.t5, 1, f.a1))
	}
	txns = append(txns, f.txn(f.t5, 1, f.b1)) // B appears once in 11

	res, err := Mine(f.space, txns, Options{MinSupport: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	// ceil(0.15 × 11) = 2, so B-rules are pruned.
	if res.MinSupportCount != 2 {
		t.Errorf("MinSupportCount = %d, want 2", res.MinSupportCount)
	}
	if r := findRule(t, res, f.space, []string{"B"}, "⟨T,$5⟩"); r != nil {
		t.Error("infrequent rule {B}→⟨T,$5⟩ should be pruned")
	}
	if r := findRule(t, res, f.space, []string{"A"}, "⟨T,$5⟩"); r == nil {
		t.Error("frequent rule {A}→⟨T,$5⟩ missing")
	}
}

func TestMineBuyingMOAProfit(t *testing.T) {
	f := newFixture(t, true)
	// One transaction recorded at $6, qty 2. Recommending $5 under buying
	// MOA keeps spending 12 → qty 2.4 → profit 2.4 × 2 = 4.8.
	txns := []model.Transaction{f.txn(f.t6, 2, f.a1)}
	res, err := Mine(f.space, txns, Options{MinSupportCount: 1, Quantity: model.BuyingMOA{}})
	if err != nil {
		t.Fatal(err)
	}
	r := findRule(t, res, f.space, []string{"A"}, "⟨T,$5⟩")
	if r == nil || math.Abs(r.Profit-4.8) > 1e-9 {
		t.Fatalf("buying-MOA profit = %+v, want 4.8", r)
	}
	// Saving MOA keeps qty 2 → profit 4.
	res2, err := Mine(f.space, txns, Options{MinSupportCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2 := findRule(t, res2, f.space, []string{"A"}, "⟨T,$5⟩")
	if r2 == nil || math.Abs(r2.Profit-4) > 1e-9 {
		t.Fatalf("saving-MOA profit = %+v, want 4", r2)
	}
}

func TestMineBinaryProfit(t *testing.T) {
	f := newFixture(t, true)
	txns := []model.Transaction{
		f.txn(f.t6, 3, f.a1),
		f.txn(f.t5, 1, f.a1),
	}
	res, err := Mine(f.space, txns, Options{MinSupportCount: 1, BinaryProfit: true})
	if err != nil {
		t.Fatal(err)
	}
	r := findRule(t, res, f.space, []string{"A"}, "⟨T,$5⟩")
	if r == nil || math.Abs(r.Profit-2) > 1e-9 {
		t.Fatalf("binary profit = %+v, want 2 (one per hit)", r)
	}
	if math.Abs(r.ProfRe()-r.Conf()) > 1e-12 {
		t.Errorf("binary ProfRe %g must equal confidence %g", r.ProfRe(), r.Conf())
	}
}

func TestMineAntichainBodies(t *testing.T) {
	f := newFixture(t, true)
	var txns []model.Transaction
	for i := 0; i < 5; i++ {
		txns = append(txns, f.txn(f.t5, 1, f.a2, f.b1))
	}
	res, err := Mine(f.space, txns, Options{MinSupportCount: 1, MaxBodyLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rules {
		if !f.space.IsAntichain(r.Body) {
			t.Errorf("body %v is not an antichain", r.Body)
		}
		if !sort.SliceIsSorted(r.Body, func(i, j int) bool { return r.Body[i] < r.Body[j] }) {
			t.Errorf("body %v is not sorted", r.Body)
		}
	}
	// {A, ⟨A,$2⟩} must never appear (comparable pair), but {A, B} must.
	if findRule(t, res, f.space, []string{"A", "⟨A,$2⟩"}, "⟨T,$5⟩") != nil {
		t.Error("comparable body generated")
	}
	if findRule(t, res, f.space, []string{"A", "B"}, "⟨T,$5⟩") == nil {
		t.Error("antichain pair {A,B} missing")
	}
}

func TestMineMaxBodyLen(t *testing.T) {
	f := newFixture(t, true)
	var txns []model.Transaction
	for i := 0; i < 5; i++ {
		txns = append(txns, f.txn(f.t5, 1, f.a1, f.b1, f.c1))
	}
	for _, maxLen := range []int{1, 2, 3} {
		res, err := Mine(f.space, txns, Options{MinSupportCount: 1, MaxBodyLen: maxLen})
		if err != nil {
			t.Fatal(err)
		}
		longest := 0
		for _, r := range res.Rules {
			if len(r.Body) > longest {
				longest = len(r.Body)
			}
		}
		if longest > maxLen {
			t.Errorf("MaxBodyLen=%d produced a body of %d", maxLen, longest)
		}
		if longest < maxLen && maxLen <= 3 {
			t.Errorf("MaxBodyLen=%d produced no body of that length", maxLen)
		}
	}
}

func TestMineUniqueOrders(t *testing.T) {
	f := newFixture(t, true)
	var txns []model.Transaction
	for i := 0; i < 5; i++ {
		txns = append(txns, f.txn(f.t5, 1, f.a1, f.b1))
		txns = append(txns, f.txn(f.t6, 1, f.a2, f.c1))
	}
	res, err := Mine(f.space, txns, Options{MinSupportCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, r := range res.AllRules() {
		if seen[r.Order] {
			t.Fatalf("duplicate rule order %d", r.Order)
		}
		seen[r.Order] = true
	}
}

func TestMineErrors(t *testing.T) {
	f := newFixture(t, true)
	txns := []model.Transaction{f.txn(f.t5, 1, f.a1)}
	cases := []struct {
		name string
		txns []model.Transaction
		opts Options
	}{
		{"no transactions", nil, Options{MinSupportCount: 1}},
		{"no threshold", txns, Options{}},
		{"negative support count", txns, Options{MinSupportCount: -1}},
		{"support out of range", txns, Options{MinSupport: 1.5}},
		{"bad body length", txns, Options{MinSupportCount: 1, MaxBodyLen: -2}},
	}
	for _, tc := range cases {
		if _, err := Mine(f.space, tc.txns, tc.opts); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestMineProfitOnlyPruning(t *testing.T) {
	f := newFixture(t, true)
	txns := []model.Transaction{
		f.txn(f.t6, 1, f.a2),
		f.txn(f.t6, 1, f.a2),
		f.txn(f.t5, 1, f.b1),
	}
	// Profit threshold 5: {A}→⟨T,$6⟩ has profit 6 and survives;
	// {B}→⟨T,$5⟩ has profit 2 and is pruned.
	res, err := Mine(f.space, txns, Options{MinRuleProfit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if findRule(t, res, f.space, []string{"A"}, "⟨T,$6⟩") == nil {
		t.Error("high-profit rule missing under profit-only mining")
	}
	if findRule(t, res, f.space, []string{"B"}, "⟨T,$5⟩") != nil {
		t.Error("low-profit rule not pruned")
	}
	for _, r := range res.Rules {
		if r.Profit < 5 {
			t.Errorf("rule with profit %g below threshold emitted", r.Profit)
		}
	}
}

func TestMineProfitOnlyRejectsNegativeProfits(t *testing.T) {
	cat := model.NewCatalog()
	a := cat.AddItem("A", false)
	pa := cat.AddPromo(a, 1, 0.5, 1)
	tt := cat.AddItem("T", true)
	pt := cat.AddPromo(tt, 1, 2, 1) // negative profit
	space := hierarchy.Flat(cat, hierarchy.Options{MOA: true})
	txns := []model.Transaction{{
		NonTarget: []model.Sale{{Item: a, Promo: pa, Qty: 1}},
		Target:    model.Sale{Item: tt, Promo: pt, Qty: 1},
	}}
	if _, err := Mine(space, txns, Options{MinRuleProfit: 1}); err == nil {
		t.Error("profit-only pruning with negative target profit must fail")
	}
	// With a support threshold it is fine.
	if _, err := Mine(space, txns, Options{MinSupportCount: 1}); err != nil {
		t.Errorf("support mining with negative profits: %v", err)
	}
}

// naiveMine enumerates every antichain body over the body candidates
// appearing in the data and counts by brute force — the reference
// implementation for equivalence testing.
func naiveMine(space *hierarchy.Space, txns []model.Transaction, minCount, maxLen int, qm model.QuantityModel) map[string]*rules.Rule {
	if qm == nil {
		qm = model.SavingMOA{}
	}
	cat := space.Catalog()
	type key struct {
		body string
		head hierarchy.GenID
	}

	// All candidate bodies: subsets (≤ maxLen) of body candidates.
	cands := space.BodyCandidates()
	var bodies [][]hierarchy.GenID
	var rec func(start int, cur []hierarchy.GenID)
	rec = func(start int, cur []hierarchy.GenID) {
		if len(cur) > 0 {
			bodies = append(bodies, append([]hierarchy.GenID(nil), cur...))
		}
		if len(cur) == maxLen {
			return
		}
		for i := start; i < len(cands); i++ {
			ok := true
			for _, g := range cur {
				if space.Comparable(g, cands[i]) {
					ok = false
					break
				}
			}
			if ok {
				rec(i+1, append(cur, cands[i]))
			}
		}
	}
	rec(0, nil)

	out := map[string]*rules.Rule{}
	for _, body := range bodies {
		bodyCount := 0
		headStats := map[hierarchy.GenID]*rules.Rule{}
		for i := range txns {
			exp := space.ExpandBasket(txns[i].NonTarget)
			if !space.BodyMatches(body, exp) {
				continue
			}
			bodyCount++
			recorded := cat.Promo(txns[i].Target.Promo)
			for _, h := range space.HeadsOf(txns[i].Target) {
				r := headStats[h]
				if r == nil {
					r = &rules.Rule{Body: body, Head: h}
					headStats[h] = r
				}
				r.HitCount++
				rec := cat.Promo(space.PromoOf(h))
				r.Profit += rec.Profit() * qm.Quantity(rec, recorded, txns[i].Target.Qty)
			}
		}
		for h, r := range headStats {
			if bodyCount < minCount || r.HitCount < minCount {
				continue
			}
			r.BodyCount = bodyCount
			out[rules.BodyKey(body)+"|"+rules.BodyKey([]hierarchy.GenID{h})] = r
		}
	}
	return out
}

func TestMineAgainstNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		moa := trial%2 == 0
		f := newFixture(t, moa)
		promos := []model.PromoID{f.a1, f.a2, f.b1, f.c1}
		targets := []model.PromoID{f.t5, f.t6}

		var txns []model.Transaction
		n := 5 + rng.Intn(20)
		for i := 0; i < n; i++ {
			var nt []model.PromoID
			for _, p := range promos {
				if rng.Float64() < 0.4 {
					nt = append(nt, p)
				}
			}
			if len(nt) == 0 {
				nt = append(nt, promos[rng.Intn(len(promos))])
			}
			txns = append(txns, f.txn(targets[rng.Intn(2)], float64(1+rng.Intn(3)), nt...))
		}
		minCount := 1 + rng.Intn(3)

		res, err := Mine(f.space, txns, Options{MinSupportCount: minCount, MaxBodyLen: 3})
		if err != nil {
			t.Fatal(err)
		}
		want := naiveMine(f.space, txns, minCount, 3, nil)

		got := map[string]*rules.Rule{}
		for _, r := range res.Rules {
			got[rules.BodyKey(r.Body)+"|"+rules.BodyKey([]hierarchy.GenID{r.Head})] = r
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (moa=%v): %d rules, reference has %d", trial, moa, len(got), len(want))
		}
		for k, w := range want {
			g, ok := got[k]
			if !ok {
				t.Fatalf("trial %d: missing rule %s", trial, w.String(f.space))
			}
			if g.BodyCount != w.BodyCount || g.HitCount != w.HitCount || math.Abs(g.Profit-w.Profit) > 1e-9 {
				t.Fatalf("trial %d: rule %s: got N%d/h%d/p%g, want N%d/h%d/p%g",
					trial, w.String(f.space), g.BodyCount, g.HitCount, g.Profit, w.BodyCount, w.HitCount, w.Profit)
			}
		}
	}
}

func TestSortedByRank(t *testing.T) {
	f := newFixture(t, true)
	var txns []model.Transaction
	for i := 0; i < 6; i++ {
		txns = append(txns, f.txn(f.t6, 1, f.a2))
		txns = append(txns, f.txn(f.t5, 1, f.b1))
	}
	res, err := Mine(f.space, txns, Options{MinSupportCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	ranked := res.SortedByRank()
	if len(ranked) != len(res.Rules)+1 {
		t.Fatalf("SortedByRank lost rules")
	}
	for i := 1; i < len(ranked); i++ {
		if rules.Outranks(ranked[i], ranked[i-1]) {
			t.Fatal("SortedByRank not in rank order")
		}
	}
}
