package mining

import (
	"math"
	"testing"

	"profitmining/internal/hierarchy"
	"profitmining/internal/model"
)

func TestMineHeadsAreTargetPromosOnly(t *testing.T) {
	f := newFixture(t, true)
	txns := []model.Transaction{
		f.txn(f.t5, 1, f.a1, f.b1),
		f.txn(f.t6, 1, f.a2, f.c1),
	}
	res, err := Mine(f.space, txns, Options{MinSupportCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.AllRules() {
		if f.space.Kind(r.Head) != hierarchy.KindItemPromo {
			t.Errorf("head %s is not an item-promo node", f.space.Name(r.Head))
		}
		if !f.space.Catalog().Item(f.space.ItemOf(r.Head)).Target {
			t.Errorf("head %s is not a target item", f.space.Name(r.Head))
		}
	}
}

func TestMineBodiesExcludeTargetNodes(t *testing.T) {
	f := newFixture(t, true)
	txns := []model.Transaction{f.txn(f.t5, 1, f.a1, f.b1)}
	res, err := Mine(f.space, txns, Options{MinSupportCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rules {
		for _, g := range r.Body {
			if f.space.ItemOf(g) == f.t {
				t.Errorf("body contains target node %s", f.space.Name(g))
			}
			if f.space.Kind(g) == hierarchy.KindRoot {
				t.Error("body contains the root")
			}
		}
	}
}

func TestMineLevelStats(t *testing.T) {
	f := newFixture(t, true)
	var txns []model.Transaction
	for i := 0; i < 10; i++ {
		txns = append(txns, f.txn(f.t5, 1, f.a1, f.b1, f.c1))
	}
	res, err := Mine(f.space, txns, Options{MinSupportCount: 2, MaxBodyLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CandidateBodies) == 0 || len(res.FrequentBodies) == 0 {
		t.Fatal("level statistics not populated")
	}
	// Frequent counts can never exceed candidate counts at any level.
	for i := range res.FrequentBodies {
		if i < len(res.CandidateBodies) && res.FrequentBodies[i] > res.CandidateBodies[i] {
			t.Errorf("level %d: %d frequent > %d candidates", i+1, res.FrequentBodies[i], res.CandidateBodies[i])
		}
	}
	if res.NumTransactions != 10 || res.MinSupportCount != 2 {
		t.Errorf("result metadata = %d txns, minsup %d", res.NumTransactions, res.MinSupportCount)
	}
}

func TestMineConfidenceBounds(t *testing.T) {
	f := newFixture(t, true)
	var txns []model.Transaction
	for i := 0; i < 8; i++ {
		tgt := f.t5
		if i%2 == 0 {
			tgt = f.t6
		}
		txns = append(txns, f.txn(tgt, 1, f.a1))
	}
	res, err := Mine(f.space, txns, Options{MinSupportCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.AllRules() {
		if c := r.Conf(); c < 0 || c > 1 {
			t.Errorf("confidence %g out of bounds for %s", c, r.String(f.space))
		}
		if r.HitCount > r.BodyCount {
			t.Errorf("hits %d exceed body count %d", r.HitCount, r.BodyCount)
		}
		if s := r.Supp(res.NumTransactions); s < 0 || s > 1 {
			t.Errorf("support %g out of bounds", s)
		}
	}
}

func TestMineExpectedBehaviorQuantity(t *testing.T) {
	// The greedy estimation extension: building with ExpectedBehavior
	// inflates rule profit for favorable-price heads.
	f := newFixture(t, true)
	txns := []model.Transaction{f.txn(f.t6, 1, f.a1)} // recorded at $6

	plain, err := Mine(f.space, txns, Options{MinSupportCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	eb := model.ExpectedBehavior{
		Catalog: f.cat,
		NearX:   2, NearY: 1, // 1-step discount always doubles
		FarX: 3, FarY: 1,
	}
	greedy, err := Mine(f.space, txns, Options{MinSupportCount: 1, Quantity: eb})
	if err != nil {
		t.Fatal(err)
	}
	// ⟨T,$5⟩ recommended against the $6 sale is 1 step more favorable:
	// plain profit 2, greedy 2 × 2 = 4.
	rp := findRule(t, plain, f.space, []string{"A"}, "⟨T,$5⟩")
	rg := findRule(t, greedy, f.space, []string{"A"}, "⟨T,$5⟩")
	if rp == nil || rg == nil {
		t.Fatal("rules missing")
	}
	if math.Abs(rp.Profit-2) > 1e-9 || math.Abs(rg.Profit-4) > 1e-9 {
		t.Errorf("profits = %g (plain), %g (greedy); want 2 and 4", rp.Profit, rg.Profit)
	}
	// The exact-price head gets no multiplier.
	rp6 := findRule(t, plain, f.space, []string{"A"}, "⟨T,$6⟩")
	rg6 := findRule(t, greedy, f.space, []string{"A"}, "⟨T,$6⟩")
	if math.Abs(rp6.Profit-rg6.Profit) > 1e-9 {
		t.Error("same-price head must not be multiplied")
	}
}

func TestMineMinConfidence(t *testing.T) {
	f := newFixture(t, true)
	var txns []model.Transaction
	// {A} → ⟨T,$6⟩ has confidence 0.5 (2 of 4); {B} → ⟨T,$5⟩ is 1.0.
	for i := 0; i < 2; i++ {
		txns = append(txns, f.txn(f.t6, 1, f.a1))
		txns = append(txns, f.txn(f.t5, 1, f.a1))
		txns = append(txns, f.txn(f.t5, 1, f.b1))
	}
	res, err := Mine(f.space, txns, Options{MinSupportCount: 1, MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if r := findRule(t, res, f.space, []string{"A"}, "⟨T,$6⟩"); r != nil {
		t.Errorf("low-confidence rule survived: %s", r.String(f.space))
	}
	if findRule(t, res, f.space, []string{"B"}, "⟨T,$5⟩") == nil {
		t.Error("high-confidence rule missing")
	}
	for _, r := range res.Rules {
		if r.Conf() < 0.8 {
			t.Errorf("rule below confidence threshold emitted: %s", r.String(f.space))
		}
	}
	// Out-of-range threshold rejected.
	if _, err := Mine(f.space, txns, Options{MinSupportCount: 1, MinConfidence: 1.5}); err == nil {
		t.Error("MinConfidence > 1 must fail")
	}
}

func TestMineEmptyBaskets(t *testing.T) {
	// Transactions may have no non-target sales at all; only the default
	// rule can cover them.
	f := newFixture(t, true)
	txns := []model.Transaction{
		{Target: model.Sale{Item: f.t, Promo: f.t5, Qty: 1}},
		f.txn(f.t5, 1, f.a1),
	}
	res, err := Mine(f.space, txns, Options{MinSupportCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Default.BodyCount != 2 || res.Default.HitCount != 2 {
		t.Errorf("default rule = N%d hits%d, want 2/2", res.Default.BodyCount, res.Default.HitCount)
	}
	r := findRule(t, res, f.space, []string{"A"}, "⟨T,$5⟩")
	if r == nil || r.BodyCount != 1 {
		t.Fatalf("{A} rule = %+v, want body count 1", r)
	}
}

func TestMineLargeQuantityProfit(t *testing.T) {
	f := newFixture(t, true)
	txns := []model.Transaction{f.txn(f.t5, 10, f.a1)} // quantity 10
	res, err := Mine(f.space, txns, Options{MinSupportCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := findRule(t, res, f.space, []string{"A"}, "⟨T,$5⟩")
	if r == nil || math.Abs(r.Profit-20) > 1e-9 {
		t.Fatalf("quantity-10 profit = %+v, want 20", r)
	}
}
