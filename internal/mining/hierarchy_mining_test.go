package mining

import (
	"math"
	"math/rand"
	"testing"

	"profitmining/internal/hierarchy"
	"profitmining/internal/model"
	"profitmining/internal/rules"
)

// hierFixture is a two-level concept hierarchy: Food ⊃ {Meat ⊃ {pork,
// beef}, Dairy ⊃ {milk}} plus an unclassified item soap, and a target T
// with two prices.
type hierFixture struct {
	cat                    *model.Catalog
	pork, beef, milk, soap model.ItemID
	pPork, pBeef           model.PromoID
	pMilk1, pMilk2, pSoap  model.PromoID
	t                      model.ItemID
	t5, t6                 model.PromoID
	space                  *hierarchy.Space
}

func newHierFixture(tb testing.TB, moa bool) *hierFixture {
	tb.Helper()
	f := &hierFixture{cat: model.NewCatalog()}
	f.pork = f.cat.AddItem("pork", false)
	f.pPork = f.cat.AddPromo(f.pork, 4, 2, 1)
	f.beef = f.cat.AddItem("beef", false)
	f.pBeef = f.cat.AddPromo(f.beef, 6, 3, 1)
	f.milk = f.cat.AddItem("milk", false)
	f.pMilk1 = f.cat.AddPromo(f.milk, 1, 0.5, 1)
	f.pMilk2 = f.cat.AddPromo(f.milk, 1.5, 0.5, 1)
	f.soap = f.cat.AddItem("soap", false)
	f.pSoap = f.cat.AddPromo(f.soap, 2, 1, 1)
	f.t = f.cat.AddItem("T", true)
	f.t5 = f.cat.AddPromo(f.t, 5, 3, 1)
	f.t6 = f.cat.AddPromo(f.t, 6, 3, 1)

	b := hierarchy.NewBuilder(f.cat)
	b.AddConcept("Food")
	b.AddConcept("Meat", "Food")
	b.AddConcept("Dairy", "Food")
	b.PlaceItem(f.pork, "Meat")
	b.PlaceItem(f.beef, "Meat")
	b.PlaceItem(f.milk, "Dairy")
	space, err := b.Compile(hierarchy.Options{MOA: moa})
	if err != nil {
		tb.Fatal(err)
	}
	f.space = space
	return f
}

func (f *hierFixture) txn(target model.PromoID, nonTarget ...model.PromoID) model.Transaction {
	t := model.Transaction{Target: model.Sale{Item: f.t, Promo: target, Qty: 1}}
	for _, p := range nonTarget {
		t.NonTarget = append(t.NonTarget, model.Sale{Item: f.cat.Promo(p).Item, Promo: p, Qty: 1})
	}
	return t
}

func TestMineConceptRules(t *testing.T) {
	f := newHierFixture(t, true)
	// Meat buyers (pork or beef) buy T at $6; milk buyers at $5.
	var txns []model.Transaction
	for i := 0; i < 6; i++ {
		p := f.pPork
		if i%2 == 0 {
			p = f.pBeef
		}
		txns = append(txns, f.txn(f.t6, p))
		txns = append(txns, f.txn(f.t5, f.pMilk1))
	}
	res, err := Mine(f.space, txns, Options{MinSupportCount: 4})
	if err != nil {
		t.Fatal(err)
	}

	// {Meat} → ⟨T,$6⟩ is only expressible with the hierarchy: pork and
	// beef alone have support 3 < 4.
	var meatRule *rules.Rule
	for _, r := range res.Rules {
		if len(r.Body) == 1 && f.space.Name(r.Body[0]) == "Meat" && f.space.Name(r.Head) == "⟨T,$6⟩" {
			meatRule = r
		}
		// pork/beef singleton bodies must have been pruned by support.
		if len(r.Body) == 1 {
			n := f.space.Name(r.Body[0])
			if n == "pork" || n == "beef" {
				t.Errorf("infrequent item rule %s survived", r.String(f.space))
			}
		}
	}
	if meatRule == nil {
		t.Fatal("concept rule {Meat} → ⟨T,$6⟩ not mined")
	}
	if meatRule.BodyCount != 6 || meatRule.HitCount != 6 || math.Abs(meatRule.Profit-18) > 1e-9 {
		t.Errorf("{Meat}→⟨T,$6⟩ = N%d hits%d prof%g, want 6/6/18", meatRule.BodyCount, meatRule.HitCount, meatRule.Profit)
	}
}

// TestMineHierarchyAgainstNaive extends the miner/naive equivalence to a
// space with concepts, multiple levels and MOA ladders.
func TestMineHierarchyAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 12; trial++ {
		moa := trial%2 == 0
		f := newHierFixture(t, moa)
		promos := []model.PromoID{f.pPork, f.pBeef, f.pMilk1, f.pMilk2, f.pSoap}
		targets := []model.PromoID{f.t5, f.t6}

		var txns []model.Transaction
		n := 6 + rng.Intn(14)
		for i := 0; i < n; i++ {
			var nt []model.PromoID
			for _, p := range promos {
				if rng.Float64() < 0.35 {
					nt = append(nt, p)
				}
			}
			if len(nt) == 0 {
				nt = append(nt, promos[rng.Intn(len(promos))])
			}
			txns = append(txns, f.txn(targets[rng.Intn(2)], nt...))
		}
		minCount := 1 + rng.Intn(3)

		res, err := Mine(f.space, txns, Options{MinSupportCount: minCount, MaxBodyLen: 3})
		if err != nil {
			t.Fatal(err)
		}
		want := naiveMine(f.space, txns, minCount, 3, nil)

		got := map[string]*rules.Rule{}
		for _, r := range res.Rules {
			got[rules.BodyKey(r.Body)+"|"+rules.BodyKey([]hierarchy.GenID{r.Head})] = r
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (moa=%v): %d rules, reference has %d", trial, moa, len(got), len(want))
		}
		for k, w := range want {
			g, ok := got[k]
			if !ok {
				t.Fatalf("trial %d: missing rule %s", trial, w.String(f.space))
			}
			if g.BodyCount != w.BodyCount || g.HitCount != w.HitCount || math.Abs(g.Profit-w.Profit) > 1e-9 {
				t.Fatalf("trial %d: rule %s measures differ", trial, w.String(f.space))
			}
		}
	}
}
