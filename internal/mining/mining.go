// Package mining implements the rule-generation step of profit mining
// (Section 3.1): level-wise (Apriori-style) discovery of generalized
// association rules {g1,…,gk} → ⟨I,P⟩ over MOA(H), following the
// multi-level mining of [SA95, HF95] specialised to single-head rules
// over target item/promotion pairs.
//
// Transactions are first expanded to their generalized sales (ancestors in
// MOA(H)); rule bodies are antichains of generalized non-target sales and
// are mined level-wise with support-based pruning. Because the number of
// possible heads is small (target items × promotion codes), each candidate
// body carries a dense per-head accumulator of hits and generated profit
// p(r, t), so one counting pass per level yields every measure of
// Definition 5: support, confidence, rule profit and recommendation
// profit.
package mining

import (
	"fmt"
	"math"

	"profitmining/internal/hierarchy"
	"profitmining/internal/model"
	"profitmining/internal/par"
	"profitmining/internal/rules"
)

// Options configures rule generation. The zero value is not valid: a
// minimum support (or a minimum rule profit, Section 3.1) must be given.
type Options struct {
	// MinSupport is the minimum relative support of a rule (fraction of
	// transactions matched by body and head), e.g. 0.001 for 0.1%.
	// Ignored if MinSupportCount is set.
	MinSupport float64
	// MinSupportCount is the absolute form of MinSupport.
	MinSupportCount int

	// MinRuleProfit, when positive, requires Prof_ru(r) ≥ MinRuleProfit.
	// If no minimum support is given it also drives search-space pruning,
	// which is sound when all target items have non-negative profit
	// (Section 3.1); Mine returns an error otherwise.
	MinRuleProfit float64

	// MinConfidence, when positive, requires Conf(r) ≥ MinConfidence —
	// one of the optional worth thresholds of Definition 5. Unlike
	// support it is not anti-monotone, so it filters emitted rules
	// without pruning the search space.
	MinConfidence float64

	// MaxBodyLen bounds the number of generalized sales in a rule body
	// (default 3).
	MaxBodyLen int

	// BinaryProfit replaces p(r,t) with 1 on a hit and 0 otherwise,
	// turning profit-driven mining into confidence-driven mining — the
	// CONF±MOA baselines of Section 5.1.
	BinaryProfit bool

	// Quantity estimates the purchase quantity at the recommended
	// promotion code (default model.SavingMOA).
	Quantity model.QuantityModel

	// Parallelism caps the number of worker goroutines used by the
	// transaction-expansion and level-wise counting passes. 0 (the
	// default) uses one worker per available CPU; 1 runs strictly
	// serial. Every setting yields byte-identical results: transactions
	// are split into fixed-size shards (independent of the worker count)
	// whose partial counts are merged in ascending shard order, so the
	// arithmetic — including the order of floating-point profit
	// additions — never depends on the schedule. When Parallelism != 1,
	// Quantity must be safe for concurrent use (the built-in models
	// are: they are stateless).
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.MaxBodyLen == 0 {
		o.MaxBodyLen = 3
	}
	if o.Quantity == nil {
		o.Quantity = model.SavingMOA{}
	}
	return o
}

// Result is the outcome of rule generation.
type Result struct {
	// Rules are the generated rules in generation order, not including
	// the default rule.
	Rules []*rules.Rule
	// Default is the default rule ∅ → g with the maximum recommendation
	// profit (Section 3.1). Its Order is after all generated rules.
	Default *rules.Rule

	// NumTransactions is the number of training transactions.
	NumTransactions int
	// MinSupportCount is the resolved absolute support threshold (0 when
	// mining is driven purely by MinRuleProfit).
	MinSupportCount int
	// FrequentBodies counts frequent bodies per level (index 0 = level 1).
	FrequentBodies []int
	// CandidateBodies counts candidate bodies per level.
	CandidateBodies []int
}

// headStat accumulates per-head counts for one candidate body.
type headStat struct {
	hits   int32
	profit float64
}

// txnData is a transaction pre-expanded for counting.
type txnData struct {
	items      []hierarchy.GenID // expanded non-target sales, sorted
	heads      []int32           // indexes into Space.AllHeads() that hit this txn
	headProfit []float64         // p(r,t) for each of heads
}

// Mine generates the rule set R of Section 3.1 from the training
// transactions.
func Mine(space *hierarchy.Space, txns []model.Transaction, opts Options) (*Result, error) {
	m, err := newMiner(space, opts, len(txns))
	if err != nil {
		return nil, err
	}
	m.prepare(txns)
	return m.run()
}

// resolveMinCount turns the relative support threshold into an absolute
// transaction count for a window of the given size. 0 means mining is
// driven purely by MinRuleProfit.
func resolveMinCount(opts Options, numTxns int) int {
	minCount := opts.MinSupportCount
	if minCount == 0 && opts.MinSupport > 0 {
		minCount = int(math.Ceil(opts.MinSupport * float64(numTxns)))
		if minCount < 1 {
			minCount = 1
		}
	}
	return minCount
}

// newMiner validates the options against a window of numTxns transactions
// and builds a miner ready for prepare + run. Shared by the batch Mine
// entry point and the incremental Stream.
func newMiner(space *hierarchy.Space, opts Options, numTxns int) (*miner, error) {
	opts = opts.withDefaults()
	if numTxns == 0 {
		return nil, fmt.Errorf("mining: no transactions")
	}
	if opts.MinSupport < 0 || opts.MinSupport > 1 {
		return nil, fmt.Errorf("mining: MinSupport %g outside [0,1]", opts.MinSupport)
	}
	if opts.MinSupportCount < 0 {
		return nil, fmt.Errorf("mining: negative MinSupportCount %d", opts.MinSupportCount)
	}
	if opts.MaxBodyLen < 1 {
		return nil, fmt.Errorf("mining: MaxBodyLen %d must be at least 1", opts.MaxBodyLen)
	}
	if opts.MinConfidence < 0 || opts.MinConfidence > 1 {
		return nil, fmt.Errorf("mining: MinConfidence %g outside [0,1]", opts.MinConfidence)
	}
	if opts.Parallelism < 0 {
		return nil, fmt.Errorf("mining: negative Parallelism %d", opts.Parallelism)
	}

	minCount := resolveMinCount(opts, numTxns)
	profitPruning := false
	if minCount == 0 {
		if opts.MinRuleProfit <= 0 {
			return nil, fmt.Errorf("mining: either a minimum support or a minimum rule profit is required")
		}
		// Support-free pruning by rule profit is only anti-monotone when
		// profits cannot be negative (Section 3.1).
		cat := space.Catalog()
		for _, h := range space.AllHeads() {
			if cat.Promo(space.PromoOf(h)).Profit() < 0 {
				return nil, fmt.Errorf("mining: profit-only pruning requires non-negative target profits (head %s has negative profit)", space.Name(h))
			}
		}
		profitPruning = true
	}

	heads := space.AllHeads()
	if len(heads) == 0 {
		return nil, fmt.Errorf("mining: catalog has no target promotion codes")
	}
	headIdx := make(map[hierarchy.GenID]int32, len(heads))
	for i, h := range heads {
		headIdx[h] = int32(i)
	}

	return &miner{
		space:         space,
		opts:          opts,
		minCount:      minCount,
		profitPruning: profitPruning,
		heads:         heads,
		headIdx:       headIdx,
		workers:       par.Workers(opts.Parallelism),
	}, nil
}

type miner struct {
	space         *hierarchy.Space
	opts          Options
	minCount      int
	profitPruning bool

	heads   []hierarchy.GenID
	headIdx map[hierarchy.GenID]int32
	workers int

	txns      []txnData
	numTxns   int
	orderNext int

	result Result
}

// prepare expands every transaction once: its generalized basket and its
// per-head hit profits. Expansions are independent per transaction (the
// space and catalog are immutable), so they fan out across the workers;
// each worker writes only its own txnData slots.
func (m *miner) prepare(txns []model.Transaction) {
	m.txns = make([]txnData, len(txns))
	m.numTxns = len(txns)
	par.For(m.workers, len(txns), func(i int) {
		m.expandTxn(&txns[i], &m.txns[i])
	})
}

// expandTxn expands one transaction into its counting form. Safe to call
// concurrently for distinct td slots: the space and catalog are immutable.
func (m *miner) expandTxn(t *model.Transaction, td *txnData) {
	cat := m.space.Catalog()
	td.items = m.space.ExpandBasket(t.NonTarget)
	hitHeads := m.space.HeadsOf(t.Target)
	td.heads = make([]int32, len(hitHeads))
	td.headProfit = make([]float64, len(hitHeads))
	recorded := cat.Promo(t.Target.Promo)
	for j, h := range hitHeads {
		td.heads[j] = m.headIdx[h]
		if m.opts.BinaryProfit {
			td.headProfit[j] = 1
			continue
		}
		rec := cat.Promo(m.space.PromoOf(h))
		qty := m.opts.Quantity.Quantity(rec, recorded, t.Target.Qty)
		td.headProfit[j] = rec.Profit() * qty
	}
}

func (m *miner) run() (*Result, error) {
	m.result.NumTransactions = m.numTxns
	m.result.MinSupportCount = m.minCount

	m.emitDefault()

	// Level 1: every body candidate is a singleton; count directly.
	level := m.countLevel(m.level1Candidates())
	for k := 2; ; k++ {
		frequent := m.filterFrequent(level)
		m.result.FrequentBodies = append(m.result.FrequentBodies, len(frequent))
		m.emitRules(frequent)
		if k > m.opts.MaxBodyLen || len(frequent) < 2 {
			break
		}
		cands, _ := m.generateCandidates(frequent, nil)
		if len(cands) == 0 {
			break
		}
		level = m.countLevel(cands)
	}

	// The default rule's order must be after all generated rules so that
	// every generated rule outranks it on ties; it was emitted first only
	// to reserve its statistics. Re-number it last.
	m.result.Default.Order = m.orderNext
	m.orderNext++
	return &m.result, nil
}

// candidate is one body being counted at the current level.
type candidate struct {
	items []hierarchy.GenID
	count int
	stats []headStat // dense, indexed by head index

	// idx is the candidate's position in the current level's candidate
	// list; slot is its position among the candidates carrying head
	// statistics this pass (-1 when it carries none). Both index the
	// shard accumulation buffers of countLevel.
	idx  int32
	slot int32

	// Sliding-window maintenance state (see stream.go); the batch path
	// leaves all of this zero. freq marks membership in the maintained
	// frequent border at the candidate's level; touched is the slide
	// generation that last changed count (deduplicates crossing events).
	freq    bool
	touched uint32

	// Cached pass-2 shard partials (see Stream.cachedHeadPass): hist
	// holds this candidate's head statistics per absolute transaction
	// shard (touched shards only, ascending); histEnd is the absolute
	// shard index up to which partials are known (exclusive).
	hist    []candShard
	histEnd int32
}

// candShard is one cached pass-2 shard partial: the head statistics this
// candidate accumulated over one ShardSize-aligned block of the lifetime
// transaction stream. Blocks are immutable once the window has passed
// over them, so a cached row never needs invalidation.
type candShard struct {
	shard int32
	row   []headStat // dense, indexed by head index
}

func (m *miner) level1Candidates() []*candidate {
	bcs := m.space.BodyCandidates()
	cands := make([]*candidate, len(bcs))
	for i, g := range bcs {
		cands[i] = &candidate{items: []hierarchy.GenID{g}}
	}
	return cands
}

// defaultHeadStats accumulates per-head hits and profit over the whole
// window — the statistics of the candidate default rules ∅ → g. The scan
// is strictly serial so the float additions are in transaction order,
// matching the ascending-shard merge contract of the counting passes.
func (m *miner) defaultHeadStats() []headStat {
	stats := make([]headStat, len(m.heads))
	for i := range m.txns {
		td := &m.txns[i]
		for j, h := range td.heads {
			stats[h].hits++
			stats[h].profit += td.headProfit[j]
		}
	}
	return stats
}

// bestDefaultHead picks the head maximizing profit, breaking ties by hits.
func bestDefaultHead(stats []headStat) int {
	best := 0
	for h := 1; h < len(stats); h++ {
		if stats[h].profit > stats[best].profit ||
			//lint:allow floatcmp -- argmax tie-break: an epsilon tie would make the winner depend on the tolerance rather than on hits
			(stats[h].profit == stats[best].profit && stats[h].hits > stats[best].hits) {
			best = h
		}
	}
	return best
}

// emitDefault computes the default rule ∅ → g maximizing Prof_re over all
// heads (body matches every transaction).
func (m *miner) emitDefault() {
	stats := m.defaultHeadStats()
	best := bestDefaultHead(stats)
	m.result.Default = &rules.Rule{
		Head:      m.heads[best],
		BodyCount: m.numTxns,
		HitCount:  int(stats[best].hits),
		Profit:    stats[best].profit,
		Order:     m.orderNext,
	}
	m.orderNext++
}

// trieNode is a node of the candidate prefix trie used for counting.
// Children are sorted by item.
type trieNode struct {
	item     hierarchy.GenID
	children []*trieNode
	cand     *candidate
}

// countBuf accumulates one transaction shard's contribution to a
// counting pass. counts is dense over the pass's index space (candidate
// index for the body and single-pass variants, stat slot for the head
// pass); stats, when present, is the flattened slot-major head
// statistics (slot*stride + head). touched records the indices with a
// nonzero count in first-touch order, so merging and clearing cost is
// proportional to what the shard actually matched, not to the candidate
// count — with millions of speculative candidates at low supports, a
// dense per-shard merge would dwarf the counting itself.
type countBuf struct {
	counts  []int
	stats   []headStat
	stride  int
	touched []int32
}

func newCountBuf(n, stride int, withStats bool) *countBuf {
	b := &countBuf{counts: make([]int, n), stride: stride}
	if withStats {
		b.stats = make([]headStat, n*stride)
	}
	return b
}

// touch registers index i, returning its (shared) shard count cell.
func (b *countBuf) touch(i int32) *int {
	if b.counts[i] == 0 {
		b.touched = append(b.touched, i)
	}
	return &b.counts[i]
}

// bufPool recycles shard buffers across shards of one counting pass. At
// most ~2×workers shards are in flight at once (par.Ordered bounds the
// reorder window), so the pool — and peak buffer memory — stays bounded.
type bufPool struct {
	ch     chan *countBuf
	n      int
	stride int
	stats  bool
}

func newBufPool(workers, n, stride int, withStats bool) *bufPool {
	return &bufPool{ch: make(chan *countBuf, 2*workers+1), n: n, stride: stride, stats: withStats}
}

func (p *bufPool) get() *countBuf {
	select {
	case b := <-p.ch:
		return b
	default:
		return newCountBuf(p.n, p.stride, p.stats)
	}
}

// put clears the buffer's touched entries and returns it to the pool.
func (p *bufPool) put(b *countBuf) {
	for _, i := range b.touched {
		b.counts[i] = 0
		if b.stats != nil {
			row := b.stats[int(i)*b.stride : (int(i)+1)*b.stride]
			for j := range row {
				row[j] = headStat{}
			}
		}
	}
	b.touched = b.touched[:0]
	select {
	case p.ch <- b:
	default:
	}
}

// buildBodyTrie builds the candidate prefix trie for one counting pass.
// Candidates must be in lexicographic order of their items, so the trie
// can be built by sequential insertion.
func buildBodyTrie(cands []*candidate) *trieNode {
	root := &trieNode{}
	for _, c := range cands {
		node := root
		for _, g := range c.items {
			n := len(node.children)
			if n > 0 && node.children[n-1].item == g {
				node = node.children[n-1]
				continue
			}
			child := &trieNode{item: g}
			node.children = append(node.children, child)
			node = child
		}
		node.cand = c
	}
	return root
}

// countBodiesPass is pass 1 of support counting: body match counts only
// (pure integers), added into each candidate's count in ascending shard
// order. It assigns candidate indexes, so cands must be exactly the
// candidates reachable from root.
func (m *miner) countBodiesPass(cands []*candidate, root *trieNode) {
	for i, c := range cands {
		c.idx = int32(i)
	}
	pool := newBufPool(m.workers, len(cands), 0, false)
	par.Ordered(m.workers, len(m.txns),
		func(_, _, lo, hi int) *countBuf {
			buf := pool.get()
			for i := lo; i < hi; i++ {
				if items := m.txns[i].items; len(items) > 0 {
					countBodies(root.children, items, buf)
				}
			}
			return buf
		},
		func(_ int, buf *countBuf) {
			for _, ci := range buf.touched {
				cands[ci].count += buf.counts[ci]
			}
			pool.put(buf)
		})
}

// countLevel counts body matches and per-head hits for all candidates of
// one level. Under support mining it makes two passes over the
// transactions: the first counts body matches only, and per-head
// accumulators are then allocated for frequent bodies alone — with
// millions of speculative candidates at low supports, allocating head
// statistics per candidate dominated the build profile. Under profit-only
// pruning there is no frequency filter, so a single pass accumulates
// everything.
//
// Each pass shards the transactions across the worker pool; every shard
// accumulates into its own countBuf and the partials are merged into the
// candidates in ascending shard order (par.Ordered), so counts — and the
// order of floating-point profit additions — are byte-identical to the
// strictly serial run for any worker count.
func (m *miner) countLevel(cands []*candidate) []*candidate {
	if len(cands) == 0 {
		return nil
	}
	m.result.CandidateBodies = append(m.result.CandidateBodies, len(cands))
	for i, c := range cands {
		c.idx = int32(i)
		c.slot = -1
	}

	root := buildBodyTrie(cands)

	if m.minCount > 0 {
		// Pass 1: body counts only (pure integers).
		m.countBodiesPass(cands, root)

		// Pass 2: head statistics for the frequent bodies alone. The stat
		// slices themselves are allocated lazily by the merge, only for
		// bodies with at least one hit — most frequent bodies never co-occur
		// with a target and zeroing their slices dominated the pass.
		var bySlot []*candidate
		for _, c := range cands {
			if c.count >= m.minCount {
				c.slot = int32(len(bySlot))
				bySlot = append(bySlot, c)
			}
		}
		if len(bySlot) == 0 {
			return cands
		}
		// The head pass only visits candidates carrying a stat slot, so it
		// walks a trie over those alone — orders of magnitude smaller than
		// the full candidate trie at low supports. The accumulation order
		// (within-shard transaction order, then ascending shard order) does
		// not depend on the trie shape, so the statistics stay byte-identical.
		m.countPass(cands, bySlot, buildBodyTrie(bySlot), countHeads)
		return cands
	}

	// Profit-only pruning: one pass counting bodies and heads together,
	// with a stat slot per candidate.
	m.countPass(cands, cands, root, countAll)
	return cands
}

// countPass runs one sharded head-statistics pass. bySlot lists the
// candidates carrying statistics, indexed by their slot; walk is the trie
// walk accumulating a single transaction into the shard buffer.
func (m *miner) countPass(cands, bySlot []*candidate, root *trieNode, walk func(nodes []*trieNode, xs []hierarchy.GenID, td *txnData, buf *countBuf)) {
	pool := newBufPool(m.workers, len(bySlot), len(m.heads), true)
	par.Ordered(m.workers, len(m.txns),
		func(_, _, lo, hi int) *countBuf {
			buf := pool.get()
			for i := lo; i < hi; i++ {
				td := &m.txns[i]
				if len(td.items) > 0 {
					walk(root.children, td.items, td, buf)
				}
			}
			return buf
		},
		func(_ int, buf *countBuf) {
			for _, slot := range buf.touched {
				c := bySlot[slot]
				row := buf.stats[int(slot)*buf.stride : (int(slot)+1)*buf.stride]
				anyHits := false
				for _, s := range row {
					if s.hits > 0 {
						anyHits = true
						break
					}
				}
				if c.slot < 0 { // countAll: counts[idx] is the body count
					c.count += buf.counts[slot]
				}
				if anyHits {
					if c.stats == nil {
						c.stats = make([]headStat, len(m.heads))
					}
					for h, s := range row {
						c.stats[h].hits += s.hits
						c.stats[h].profit += s.profit
					}
				}
			}
			pool.put(buf)
		})
}

// countBodies is the body-count pass: it advances two sorted sequences
// (trie children and transaction items) and increments matched
// candidates in the shard buffer.
func countBodies(nodes []*trieNode, xs []hierarchy.GenID, buf *countBuf) {
	ni, xi := 0, 0
	for ni < len(nodes) && xi < len(xs) {
		switch {
		case nodes[ni].item < xs[xi]:
			ni++
		case nodes[ni].item > xs[xi]:
			xi++
		default:
			node := nodes[ni]
			if node.cand != nil {
				*buf.touch(node.cand.idx)++
			}
			if len(node.children) > 0 {
				countBodies(node.children, xs[xi+1:], buf)
			}
			ni++
			xi++
		}
	}
}

// countHeads is the head pass: it accumulates hits and profit for
// candidates that survived the frequency filter (slot assigned).
func countHeads(nodes []*trieNode, xs []hierarchy.GenID, td *txnData, buf *countBuf) {
	if len(td.heads) == 0 {
		return
	}
	ni, xi := 0, 0
	for ni < len(nodes) && xi < len(xs) {
		switch {
		case nodes[ni].item < xs[xi]:
			ni++
		case nodes[ni].item > xs[xi]:
			xi++
		default:
			node := nodes[ni]
			if c := node.cand; c != nil && c.slot >= 0 {
				*buf.touch(c.slot)++
				base := int(c.slot) * buf.stride
				for j, h := range td.heads {
					s := &buf.stats[base+int(h)]
					s.hits++
					s.profit += td.headProfit[j]
				}
			}
			if len(node.children) > 0 {
				countHeads(node.children, xs[xi+1:], td, buf)
			}
			ni++
			xi++
		}
	}
}

// countAll is the single-pass variant for profit-only pruning: every
// candidate uses its own index as stat slot, and the shard count doubles
// as the body count.
func countAll(nodes []*trieNode, xs []hierarchy.GenID, td *txnData, buf *countBuf) {
	ni, xi := 0, 0
	for ni < len(nodes) && xi < len(xs) {
		switch {
		case nodes[ni].item < xs[xi]:
			ni++
		case nodes[ni].item > xs[xi]:
			xi++
		default:
			node := nodes[ni]
			if c := node.cand; c != nil {
				*buf.touch(c.idx)++
				if len(td.heads) > 0 {
					base := int(c.idx) * buf.stride
					for j, h := range td.heads {
						s := &buf.stats[base+int(h)]
						s.hits++
						s.profit += td.headProfit[j]
					}
				}
			}
			if len(node.children) > 0 {
				countAll(node.children, xs[xi+1:], td, buf)
			}
			ni++
			xi++
		}
	}
}

// filterFrequent keeps candidates that can still yield or extend to a
// rule: body support at least the threshold, or (under profit-only
// pruning) some head profit at least the threshold.
func (m *miner) filterFrequent(cands []*candidate) []*candidate {
	var out []*candidate
	for _, c := range cands {
		if m.minCount > 0 {
			if c.count >= m.minCount {
				out = append(out, c)
			}
			continue
		}
		// Profit pruning: Prof_ru is anti-monotone in the body when all
		// profits are non-negative, so the max head profit bounds every
		// extension.
		if c.stats == nil {
			continue
		}
		for h := range c.stats {
			if c.stats[h].profit >= m.opts.MinRuleProfit {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// emitRules converts a frequent body's per-head statistics into rules.
func (m *miner) emitRules(frequent []*candidate) {
	for _, c := range frequent {
		if c.stats == nil {
			continue
		}
		for h := range c.stats {
			st := &c.stats[h]
			if st.hits == 0 {
				continue
			}
			if m.minCount > 0 && int(st.hits) < m.minCount {
				continue
			}
			if m.opts.MinRuleProfit > 0 && st.profit < m.opts.MinRuleProfit {
				continue
			}
			if m.opts.MinConfidence > 0 && float64(st.hits) < m.opts.MinConfidence*float64(c.count) {
				continue
			}
			body := make([]hierarchy.GenID, len(c.items))
			copy(body, c.items)
			m.result.Rules = append(m.result.Rules, &rules.Rule{
				Body:      body,
				Head:      m.heads[h],
				BodyCount: c.count,
				HitCount:  int(st.hits),
				Profit:    st.profit,
				Order:     m.orderNext,
			})
			m.orderNext++
		}
	}
}

// generateCandidates joins frequent k-bodies sharing a (k−1)-prefix into
// (k+1)-candidates, enforcing the antichain constraint on the new pair and
// the Apriori condition that every k-subset is frequent (checked against a
// trie of the frequent bodies — no per-candidate key material).
//
// monitored, when non-nil, is a persistent trie of previously counted
// candidates at the target level (see Stream): a generated body already in
// it is adopted — its existing *candidate, count and all, is emitted
// instead of a fresh allocation. fresh lists the candidates not adopted
// (all of out when monitored is nil), in lexicographic order; they are the
// ones still needing a body count.
func (m *miner) generateCandidates(frequent []*candidate, monitored *trieNode) (out, fresh []*candidate) {
	k := len(frequent[0].items)
	var freqTrie *trieNode
	if k >= 2 {
		freqTrie = buildBodyTrie(frequent) // for the subset checks
	}
	join := make([]hierarchy.GenID, k+1) // scratch: the joined body
	sub := make([]hierarchy.GenID, k)    // scratch: one subset of it

	for i := 0; i < len(frequent); i++ {
		a := frequent[i]
		var prefix *trieNode
		if monitored != nil {
			prefix = descend(monitored, a.items)
		}
		copy(join, a.items)
		for j := i + 1; j < len(frequent); j++ {
			b := frequent[j]
			if !samePrefix(a.items, b.items, k-1) {
				break // frequent is lexicographically sorted
			}
			x, y := a.items[k-1], b.items[k-1]
			// x < y by lexicographic order of the frequent list.
			if m.space.Comparable(x, y) {
				continue // bodies must be antichains (Definition 4)
			}
			join[k] = y
			if k >= 2 && !m.allSubsetsFrequent(join, sub, freqTrie) {
				continue
			}
			if prefix != nil {
				if node := findChild(prefix.children, y); node != nil && node.cand != nil {
					out = append(out, node.cand)
					continue
				}
			}
			items := make([]hierarchy.GenID, k+1)
			copy(items, join)
			c := &candidate{items: items}
			out = append(out, c)
			fresh = append(fresh, c)
		}
	}
	return out, fresh
}

// allSubsetsFrequent checks the Apriori condition for the subsets that
// drop one of the first k−1 elements (dropping either of the last two
// yields the generating pair, which is frequent by construction).
func (m *miner) allSubsetsFrequent(items, sub []hierarchy.GenID, freq *trieNode) bool {
	n := len(items)
	for drop := 0; drop < n-2; drop++ {
		sub = sub[:0]
		for i, g := range items {
			if i != drop {
				sub = append(sub, g)
			}
		}
		if node := descend(freq, sub); node == nil || node.cand == nil {
			return false
		}
	}
	return true
}

// findChild binary-searches a node's sorted children for item g.
func findChild(ch []*trieNode, g hierarchy.GenID) *trieNode {
	lo, hi := 0, len(ch)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ch[mid].item < g {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ch) && ch[lo].item == g {
		return ch[lo]
	}
	return nil
}

// descend follows items down the trie, returning the node at the end of
// the path or nil if the path is absent.
func descend(root *trieNode, items []hierarchy.GenID) *trieNode {
	node := root
	for _, g := range items {
		if node = findChild(node.children, g); node == nil {
			return nil
		}
	}
	return node
}

func samePrefix(a, b []hierarchy.GenID, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AllRules returns the generated rules plus the default rule, in
// generation order (default last).
func (r *Result) AllRules() []*rules.Rule {
	out := make([]*rules.Rule, 0, len(r.Rules)+1)
	out = append(out, r.Rules...)
	out = append(out, r.Default)
	return out
}

// SortedByRank returns AllRules sorted by MPF rank.
func (r *Result) SortedByRank() []*rules.Rule {
	out := r.AllRules()
	rules.SortByRank(out)
	return out
}
