// Incremental (sliding-window) rule generation. A Stream keeps the
// level-wise mining state of a transaction window alive between updates
// so that sliding the window — evicting the oldest transactions and
// appending new ones — costs work proportional to the slide, not to the
// window.
//
// What is delta-maintained and what is recomputed follows directly from
// the determinism contract of the counting passes (see Options.Parallelism):
//
//   - Body support counts are integers, and integer addition is
//     order-independent, so they are maintained online: each monitored
//     candidate's count is adjusted by walking only the entering and
//     leaving transactions against the candidate trie. This skips the
//     pass-1 sweep over the whole window — the dominant cost of a batch
//     run at low support thresholds.
//
//   - Per-head profit accumulators are floats, and the batch contract
//     fixes their addition order (within-shard transaction order, then
//     ascending shard order). A float sum cannot be slid: removing the
//     oldest summands and appending new ones changes where every
//     surviving transaction falls relative to the shard grid — unless
//     the window stays aligned to that grid. When both the window start
//     and the window length are multiples of par.ShardSize, every shard
//     of the batch pass covers a fixed block of the lifetime transaction
//     stream, whose per-candidate partial sums never change once
//     computed. cachedStatPass exploits this: it caches each frequent
//     candidate's per-shard head statistics and re-derives pass 2 by
//     replaying the cached rows in ascending shard order — the exact
//     batch merge order — recomputing only shards not yet covered.
//     Unaligned windows fall back to the plain sharded pass (the cache
//     is left intact; cached rows never go stale, because the blocks
//     they cover are immutable).
//
// The candidate lattice itself is not regenerated wholesale either. The
// pair level — at low supports by far the widest join — is maintained
// event-driven: the set of generated pairs is determined by the frequent
// singletons alone (every antichain pair of frequent singletons), so its
// frequent subset can only change through a count crossing the threshold
// (observed directly by the delta walks) or a singleton entering or
// leaving the frequent set (observed by diffing the singleton border).
// maintainBorder processes exactly those events. Deeper levels are
// regenerated from the maintained pair border with the same level-wise
// join the batch run uses — they are orders of magnitude narrower.
// Counts are carried across slides by a persistent per-level trie that
// only ever grows: every candidate ever monitored stays in it and
// receives every subsequent delta, so its count is correct for the
// current window whenever it re-enters the lattice — even after
// dropping out for a few slides. Only candidates never seen before are
// counted over the full window.
package mining

import (
	"fmt"
	"sort"

	"profitmining/internal/hierarchy"
	"profitmining/internal/model"
	"profitmining/internal/par"
	"profitmining/internal/rules"
)

// Stream is an incrementally maintained miner over a sliding window of
// transactions. It is not safe for concurrent use.
type Stream struct {
	m   *miner
	raw []model.Transaction // current window, oldest first

	// level1 holds the (static) singleton candidates; monitored holds
	// the candidate state of levels ≥ 2 from the latest mine (index 0 is
	// level 2). All counts live in persistent tries and are maintained
	// across slides.
	level1     []*candidate
	level1Trie *trieNode
	monitored  []streamLevel
	counted    bool // level-1 pass 1 has run

	// evicted is the total number of transactions ever evicted — the
	// absolute offset of the window start in the lifetime stream, which
	// decides whether the window is aligned to the shard grid (see
	// cachedStatPass).
	evicted int

	// Event-driven pair-border state (see maintainBorder). When borderOK,
	// freq1/freq2 are the current frequent singletons and pairs (each
	// candidate's freq flag mirrors membership), gen2 is the size of the
	// implicit pair candidate set, and touched2 collects the pairs whose
	// count changed during the latest slide's delta walks. minCountPrev
	// guards against threshold changes, which re-frame every crossing.
	borderOK     bool
	minCountPrev int
	freq1        []*candidate // frequent singletons, in level-1 order
	freq2        []*candidate // frequent pairs, lexicographic
	gen2         int
	touched2     []*candidate
	slideGen     uint32

	// Rule identity across slides: a rule whose body, head, statistics
	// and emission order are all unchanged is re-emitted as the same
	// pointer, so downstream layers can detect unchanged rules by
	// pointer equality.
	prevRules   map[string]*rules.Rule
	prevDefault *rules.Rule

	res *Result
}

// streamLevel is one monitored candidate level (k ≥ 2). cands is the
// current slide's candidate list (nil for the event-maintained pair
// level, whose lattice is implicit); trie is the persistent superset
// trie holding every candidate ever monitored at this level. A candidate
// may sit in the trie without being frequent; the delta walks keep
// updating it, so its count is valid again the moment it re-enters the
// lattice.
type streamLevel struct {
	cands []*candidate // lexicographic order
	trie  *trieNode
}

// NewStream mines the initial window and returns a Stream positioned on
// it. The options must resolve to a positive support threshold:
// profit-only pruning filters candidates by a float accumulator, which
// cannot be delta-maintained (see the package comment on stream
// maintenance), so it is rejected here.
func NewStream(space *hierarchy.Space, txns []model.Transaction, opts Options) (*Stream, error) {
	m, err := newMiner(space, opts, len(txns))
	if err != nil {
		return nil, err
	}
	if m.profitPruning {
		return nil, fmt.Errorf("mining: incremental maintenance requires a support threshold (profit-only pruning cannot be delta-maintained)")
	}
	m.prepare(txns)
	s := &Stream{
		m:         m,
		raw:       append([]model.Transaction(nil), txns...),
		level1:    m.level1Candidates(),
		prevRules: map[string]*rules.Rule{},
	}
	s.level1Trie = buildBodyTrie(s.level1)
	s.mine()
	return s, nil
}

// Slide evicts the oldest evict transactions, appends enter, and re-mines
// the new window. The returned Result is identical — rule for rule,
// statistic for statistic, order for order — to Mine over the same
// window with the same options.
func (s *Stream) Slide(enter []model.Transaction, evict int) (*Result, error) {
	m := s.m
	if evict < 0 || evict > len(m.txns) {
		return nil, fmt.Errorf("mining: evict %d outside window of %d", evict, len(m.txns))
	}
	keep := len(m.txns) - evict
	nw := keep + len(enter)
	if nw == 0 {
		return nil, fmt.Errorf("mining: slide would empty the window")
	}
	s.slideGen++

	// Retire the evicted transactions from every maintained count while
	// their expansions are still at hand. The pair level's walk collects
	// count-crossing events for maintainBorder.
	for i := 0; i < evict; i++ {
		if items := m.txns[i].items; len(items) > 0 {
			deltaCount(s.level1Trie.children, items, -1)
			for j := range s.monitored {
				if j == 0 && s.borderOK {
					s.deltaTouch(s.monitored[j].trie.children, items, -1)
				} else {
					deltaCount(s.monitored[j].trie.children, items, -1)
				}
			}
		}
	}

	txns := make([]txnData, nw)
	copy(txns, m.txns[evict:])
	raw := make([]model.Transaction, nw)
	copy(raw, s.raw[evict:])
	copy(raw[keep:], enter)
	par.For(m.workers, len(enter), func(i int) {
		m.expandTxn(&raw[keep+i], &txns[keep+i])
	})
	m.txns = txns
	m.numTxns = nw
	s.raw = raw
	s.evicted += evict

	for i := keep; i < nw; i++ {
		if items := txns[i].items; len(items) > 0 {
			deltaCount(s.level1Trie.children, items, +1)
			for j := range s.monitored {
				if j == 0 && s.borderOK {
					s.deltaTouch(s.monitored[j].trie.children, items, +1)
				} else {
					deltaCount(s.monitored[j].trie.children, items, +1)
				}
			}
		}
	}

	// A relative MinSupport re-resolves against the new window length,
	// exactly as a batch run over this window would.
	m.minCount = resolveMinCount(m.opts, nw)
	s.maintainBorder()
	s.mine()
	return s.res, nil
}

// Result returns the result of the latest mine. The pointer is a
// snapshot: later slides do not mutate it.
func (s *Stream) Result() *Result { return s.res }

// Window returns the current window, oldest first. The slice is owned by
// the stream; callers must not modify it.
func (s *Stream) Window() []model.Transaction { return s.raw }

// Len returns the current window length.
func (s *Stream) Len() int { return len(s.raw) }

// ExpandedBodies returns each window transaction's expanded non-target
// basket (as produced by Space.ExpandBasket), in window order. The inner
// slices are owned by the stream; callers must not modify them.
func (s *Stream) ExpandedBodies() [][]hierarchy.GenID {
	out := make([][]hierarchy.GenID, len(s.m.txns))
	for i := range s.m.txns {
		out[i] = s.m.txns[i].items
	}
	return out
}

// mine re-runs the level-wise loop of miner.run over the current window,
// reusing maintained body counts, the event-maintained pair border, and
// cached pass-2 shard partials wherever they apply. Pass 2 and rule
// emission mirror the batch loop statement for statement so the Result
// is indistinguishable from a batch mine.
func (s *Stream) mine() {
	m := s.m
	m.result = Result{NumTransactions: m.numTxns, MinSupportCount: m.minCount}
	m.orderNext = 0

	// Default-rule statistics are computed first (the batch loop reserves
	// Order 0 for the default before emitting any rule), but the rule
	// itself is built last, once its final Order is known.
	dstats := m.defaultHeadStats()
	dbest := bestDefaultHead(dstats)
	m.orderNext = 1

	emitted := make(map[string]*rules.Rule, len(s.prevRules))
	prevMon := s.monitored
	var nextMon []streamLevel

	if !s.counted {
		m.countBodiesPass(s.level1, s.level1Trie)
		s.counted = true
	}
	frequent := s.statPass(s.level1, len(s.level1))
	for k := 2; ; k++ {
		m.result.FrequentBodies = append(m.result.FrequentBodies, len(frequent))
		s.emitReuse(frequent, emitted)
		eventLevel := k == 2 && s.borderOK && len(prevMon) > 0
		if eventLevel {
			// Keep the pair trie under delta maintenance even on slides
			// where the pair level goes empty — its counts must stay
			// current for the border events to be meaningful.
			nextMon = append(nextMon, streamLevel{trie: prevMon[0].trie})
		}
		if k > m.opts.MaxBodyLen || len(frequent) < 2 {
			break
		}
		if eventLevel {
			if s.gen2 == 0 {
				break // batch: an empty generation ends the loop
			}
			m.result.CandidateBodies = append(m.result.CandidateBodies, s.gen2)
			for i, c := range s.freq2 {
				c.stats = nil
				c.slot = int32(i)
			}
			s.cachedStatPass(s.freq2)
			frequent = s.freq2
			continue
		}
		var prev *streamLevel
		if len(prevMon) >= k-1 {
			prev = &prevMon[k-2]
		}
		var monTrie *trieNode
		if prev != nil {
			monTrie = prev.trie
		}
		// Generation adopts straight out of the persistent trie: a joined
		// body already monitored is emitted as its existing candidate,
		// count and all; only never-seen bodies come back in fresh.
		gen, fresh := m.generateCandidates(frequent, monTrie)
		if len(gen) == 0 {
			if k == 2 {
				s.borderOK = false
			}
			break
		}
		lvl := s.adopt(gen, fresh, prev)
		nextMon = append(nextMon, lvl)
		prevFrequent := frequent
		frequent = s.statPass(lvl.cands, len(gen))
		if k == 2 {
			s.seedBorder(prevFrequent, len(gen), frequent)
		}
	}
	s.monitored = nextMon

	def := &rules.Rule{
		Head:      m.heads[dbest],
		BodyCount: m.numTxns,
		HitCount:  int(dstats[dbest].hits),
		Profit:    dstats[dbest].profit,
		Order:     m.orderNext,
	}
	//lint:allow rankorder,floatcmp -- pointer-reuse gate, not an ordering: only a field-for-field unchanged default rule may keep its pointer identity across slides
	if p := s.prevDefault; p != nil && p.Head == def.Head && p.BodyCount == def.BodyCount && p.HitCount == def.HitCount && p.Order == def.Order && p.Profit == def.Profit {
		def = p
	}
	m.orderNext++
	m.result.Default = def
	s.prevDefault = def
	s.prevRules = emitted

	res := m.result
	s.res = &res
}

// statPass runs pass 2 for one materialized level: head statistics for
// the frequent candidates alone. Stale statistics from the previous
// slide are discarded first — only the integer body counts carry over.
// It returns the frequent candidates (the stream always mines with a
// positive support threshold, so the frequency filter is exactly the
// count test).
func (s *Stream) statPass(cands []*candidate, candCount int) []*candidate {
	m := s.m
	m.result.CandidateBodies = append(m.result.CandidateBodies, candCount)
	var bySlot []*candidate
	for _, c := range cands {
		c.stats = nil // stale from the previous slide; reallocated on first hit
		if c.count >= m.minCount {
			c.slot = int32(len(bySlot))
			bySlot = append(bySlot, c)
		} else {
			c.slot = -1
		}
	}
	s.cachedStatPass(bySlot)
	return bySlot
}

// cachedStatPass computes head statistics for the candidates carrying a
// stat slot. When the window is aligned to the shard grid of the batch
// pass (start and length both multiples of par.ShardSize), each shard
// covers an immutable block of the lifetime stream, so every
// (candidate, shard) partial is computed at most once, cached on the
// candidate, and replayed in ascending shard order — the batch merge
// order — which keeps the float statistics byte-identical to a batch
// mine. Unaligned windows run the plain sharded pass; the cache is left
// intact for when alignment returns.
func (s *Stream) cachedStatPass(bySlot []*candidate) {
	m := s.m
	if len(bySlot) == 0 {
		return
	}
	w := len(m.txns)
	if s.evicted%par.ShardSize != 0 || w%par.ShardSize != 0 {
		m.countPass(nil, bySlot, buildBodyTrie(bySlot), countHeads)
		return
	}
	shard0 := int32(s.evicted / par.ShardSize)
	end := shard0 + int32(w/par.ShardSize)

	// Recompute missing coverage, walking shards in ascending order with
	// a trie that grows as candidates' uncovered ranges begin. The walk
	// is serial, so it is worker-independent by construction; each
	// shard's partial accumulates in within-shard transaction order,
	// exactly like one shard of the batch pass.
	buckets := make([][]*candidate, end-shard0)
	work := 0
	for _, c := range bySlot {
		if len(c.hist) > 0 && c.hist[0].shard < shard0 {
			i := sort.Search(len(c.hist), func(i int) bool { return c.hist[i].shard >= shard0 })
			c.hist = append(c.hist[:0:0], c.hist[i:]...)
		}
		start := c.histEnd
		if start < shard0 {
			start = shard0
		}
		if start < end {
			buckets[start-shard0] = append(buckets[start-shard0], c)
			work++
		}
	}
	stride := len(m.heads)
	if work > 0 {
		buf := newCountBuf(work, stride, true)
		root := &trieNode{}
		var active []*candidate
		for rel := range buckets {
			for _, c := range buckets[rel] {
				c.slot = int32(len(active))
				active = append(active, c)
				insertCand(root, c)
			}
			if len(active) == 0 {
				continue
			}
			lo := rel * par.ShardSize
			for i := lo; i < lo+par.ShardSize; i++ {
				td := &m.txns[i]
				if len(td.items) > 0 {
					countHeads(root.children, td.items, td, buf)
				}
			}
			for _, slot := range buf.touched {
				row := buf.stats[int(slot)*stride : (int(slot)+1)*stride]
				anyHits := false
				for _, st := range row {
					if st.hits > 0 {
						anyHits = true
						break
					}
				}
				// The batch merge skips shards without a head hit (the stat
				// slice is allocated lazily); the cache mirrors that — a
				// hitless shard has no row, and an all-zero row would alter
				// the float replay anyway (x + 0 rewrites a -0 sum).
				if anyHits {
					c := active[slot]
					cp := make([]headStat, stride)
					copy(cp, row)
					c.hist = append(c.hist, candShard{shard: shard0 + int32(rel), row: cp})
				}
				for j := range row {
					row[j] = headStat{}
				}
				buf.counts[slot] = 0
			}
			buf.touched = buf.touched[:0]
		}
		for _, c := range active {
			c.histEnd = end
		}
	}

	// Replay the cached rows covering the window, ascending — the order
	// the batch merge commits shards in.
	for _, c := range bySlot {
		for _, hs := range c.hist {
			if c.stats == nil {
				c.stats = make([]headStat, stride)
			}
			for h := range hs.row {
				c.stats[h].hits += hs.row[h].hits
				c.stats[h].profit += hs.row[h].profit
			}
		}
	}
}

// maintainBorder advances the event-driven pair border across one slide.
// The generated pair set is a pure function of the frequent singletons
// (every antichain pair), so its frequent subset changes only through
//
//	(1) a pair's count crossing the threshold — collected as touched2 by
//	    the slide's delta walks;
//	(2) a singleton leaving the frequent set — every generated pair with
//	    that endpoint leaves with it;
//	(3) a singleton entering the frequent set — its antichain pairs with
//	    the other frequent singletons enter the generated set; pairs
//	    already monitored carry valid maintained counts, never-seen ones
//	    are counted over the window and grafted into the pair trie.
//
// A changed support threshold re-frames every crossing at once; the
// border is invalidated instead, and the next mine regenerates it with
// the batch join (seedBorder re-arms event maintenance).
func (s *Stream) maintainBorder() {
	m := s.m
	touched := s.touched2
	s.touched2 = nil
	if !s.borderOK {
		return
	}
	if m.minCount != s.minCountPrev || len(s.monitored) == 0 {
		s.borderOK = false
		return
	}
	trie2 := s.monitored[0].trie

	f1new := m.filterFrequent(s.level1)
	var removed, added []*candidate
	i, j := 0, 0
	for i < len(s.freq1) || j < len(f1new) {
		switch {
		case j == len(f1new) || (i < len(s.freq1) && s.freq1[i].items[0] < f1new[j].items[0]):
			removed = append(removed, s.freq1[i])
			i++
		case i == len(s.freq1) || f1new[j].items[0] < s.freq1[i].items[0]:
			added = append(added, f1new[j])
			j++
		default:
			i++
			j++
		}
	}

	recheck := touched
	if len(removed) > 0 || len(added) > 0 {
		// Removals first, against the shrinking singleton set, then
		// additions against the growing one: each affected pair is
		// accounted exactly once, including pairs between two churned
		// singletons.
		for _, r := range removed {
			r.freq = false
			x := r.items[0]
			for _, p := range s.level1 {
				if !p.freq {
					continue
				}
				if lo, hi := orderPair(x, p.items[0]); !m.space.Comparable(lo, hi) {
					s.gen2--
				}
			}
		}
		var fresh []*candidate
		for _, a := range added {
			a.freq = true
			x := a.items[0]
			for _, p := range s.level1 {
				if !p.freq || p == a {
					continue
				}
				lo, hi := orderPair(x, p.items[0])
				if m.space.Comparable(lo, hi) {
					continue
				}
				s.gen2++
				if c := lookupPair(trie2, lo, hi); c != nil {
					recheck = append(recheck, c)
				} else {
					fresh = append(fresh, &candidate{items: []hierarchy.GenID{lo, hi}})
				}
			}
		}
		if len(fresh) > 0 {
			sort.Slice(fresh, func(i, j int) bool {
				a, b := fresh[i].items, fresh[j].items
				if a[0] != b[0] {
					return a[0] < b[0]
				}
				return a[1] < b[1]
			})
			m.countBodiesPass(fresh, buildBodyTrie(fresh))
			for _, c := range fresh {
				insertCand(trie2, c)
				recheck = append(recheck, c)
			}
		}
	}
	s.freq1 = f1new

	// Decide membership for every pair that could have changed: the
	// standing border (endpoint removals) plus every rechecked pair. The
	// flag flip makes duplicate entries idempotent.
	var adds []*candidate
	changed := false
	decide := func(c *candidate) {
		want := c.count >= m.minCount &&
			s.singletonFrequent(c.items[0]) && s.singletonFrequent(c.items[1])
		if want == c.freq {
			return
		}
		c.freq = want
		changed = true
		if want {
			adds = append(adds, c)
		}
	}
	for _, c := range s.freq2 {
		decide(c)
	}
	for _, c := range recheck {
		decide(c)
	}
	if !changed {
		return
	}
	sort.Slice(adds, func(i, j int) bool {
		a, b := adds[i].items, adds[j].items
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] < b[1]
	})
	merged := make([]*candidate, 0, len(s.freq2)+len(adds))
	i, j = 0, 0
	for i < len(s.freq2) || j < len(adds) {
		switch {
		case j == len(adds) || (i < len(s.freq2) && pairLess(s.freq2[i], adds[j])):
			if s.freq2[i].freq {
				merged = append(merged, s.freq2[i])
			}
			i++
		default:
			merged = append(merged, adds[j])
			j++
		}
	}
	s.freq2 = merged
}

// seedBorder (re)arms event-driven pair maintenance from a full batch
// generation: freq1/freq2 membership flags are rebuilt from scratch and
// the implicit candidate-set size recorded.
func (s *Stream) seedBorder(freq1 []*candidate, gen2 int, freq2 []*candidate) {
	for _, c := range s.freq1 {
		c.freq = false
	}
	for _, c := range s.freq2 {
		c.freq = false
	}
	for _, c := range freq1 {
		c.freq = true
	}
	for _, c := range freq2 {
		c.freq = true
	}
	s.freq1, s.freq2, s.gen2 = freq1, freq2, gen2
	s.minCountPrev = s.m.minCount
	s.borderOK = true
}

// singletonFrequent reports whether the singleton body g is currently
// frequent, by its maintained border flag.
func (s *Stream) singletonFrequent(g hierarchy.GenID) bool {
	n := findChild(s.level1Trie.children, g)
	return n != nil && n.cand != nil && n.cand.freq
}

// orderPair returns the two generalizations in ascending order — the
// orientation the batch join tests antichains in.
func orderPair(x, y hierarchy.GenID) (hierarchy.GenID, hierarchy.GenID) {
	if y < x {
		return y, x
	}
	return x, y
}

// pairLess orders pair candidates lexicographically.
func pairLess(a, b *candidate) bool {
	if a.items[0] != b.items[0] {
		return a.items[0] < b.items[0]
	}
	return a.items[1] < b.items[1]
}

// lookupPair finds the monitored pair candidate {x, y}, if any.
func lookupPair(root *trieNode, x, y hierarchy.GenID) *candidate {
	n := findChild(root.children, x)
	if n == nil {
		return nil
	}
	n = findChild(n.children, y)
	if n == nil {
		return nil
	}
	return n.cand
}

// emitReuse mirrors miner.emitRules, but re-emits a previous slide's rule
// pointer when body, head, statistics and order are all unchanged.
func (s *Stream) emitReuse(frequent []*candidate, emitted map[string]*rules.Rule) {
	m := s.m
	for _, c := range frequent {
		if c.stats == nil {
			continue
		}
		for h := range c.stats {
			st := &c.stats[h]
			if st.hits == 0 {
				continue
			}
			if int(st.hits) < m.minCount {
				continue
			}
			if m.opts.MinRuleProfit > 0 && st.profit < m.opts.MinRuleProfit {
				continue
			}
			if m.opts.MinConfidence > 0 && float64(st.hits) < m.opts.MinConfidence*float64(c.count) {
				continue
			}
			key := ruleKey(c.items, m.heads[h])
			r := s.prevRules[key]
			if r == nil || r.BodyCount != c.count || r.HitCount != int(st.hits) || r.Order != m.orderNext ||
				r.Profit != st.profit { //lint:allow floatcmp -- pointer-reuse gate: only an exactly unchanged rule may keep its identity across slides
				body := make([]hierarchy.GenID, len(c.items))
				copy(body, c.items)
				r = &rules.Rule{
					Body:      body,
					Head:      m.heads[h],
					BodyCount: c.count,
					HitCount:  int(st.hits),
					Profit:    st.profit,
					Order:     m.orderNext,
				}
			}
			m.result.Rules = append(m.result.Rules, r)
			emitted[key] = r
			m.orderNext++
		}
	}
}

// adopt finishes a generated level: candidates adopted from the
// persistent trie already carry their maintained counts; the fresh ones
// are counted once over the full window and grafted in (the trie is a
// superset — see streamLevel).
func (s *Stream) adopt(gen, fresh []*candidate, prev *streamLevel) streamLevel {
	if prev == nil {
		trie := buildBodyTrie(gen)
		s.m.countBodiesPass(gen, trie)
		return streamLevel{cands: gen, trie: trie}
	}
	lvl := streamLevel{cands: gen, trie: prev.trie}
	if len(fresh) > 0 {
		// fresh preserves gen's lexicographic order, so sequential trie
		// insertion applies. The counting pass runs over a trie of the
		// fresh candidates alone; the graft into the persistent trie
		// happens after, so adopted candidates cannot be double-counted.
		s.m.countBodiesPass(fresh, buildBodyTrie(fresh))
		for _, c := range fresh {
			insertCand(lvl.trie, c)
		}
	}
	return lvl
}

// insertCand grafts one candidate into a persistent trie, keeping each
// node's children sorted by item.
func insertCand(root *trieNode, c *candidate) {
	node := root
	for _, g := range c.items {
		ch := node.children
		idx := sort.Search(len(ch), func(i int) bool { return ch[i].item >= g })
		if idx < len(ch) && ch[idx].item == g {
			node = ch[idx]
			continue
		}
		child := &trieNode{item: g}
		node.children = append(node.children, nil)
		copy(node.children[idx+1:], node.children[idx:])
		node.children[idx] = child
		node = child
	}
	node.cand = c
}

// deltaCount is the delta form of the countBodies walk: it adds delta
// directly to each matched candidate's count. Integer counts are
// order-independent, so no sharding contract applies.
func deltaCount(nodes []*trieNode, xs []hierarchy.GenID, delta int) {
	ni, xi := 0, 0
	for ni < len(nodes) && xi < len(xs) {
		switch {
		case nodes[ni].item < xs[xi]:
			ni++
		case nodes[ni].item > xs[xi]:
			xi++
		default:
			node := nodes[ni]
			if node.cand != nil {
				node.cand.count += delta
			}
			if len(node.children) > 0 {
				deltaCount(node.children, xs[xi+1:], delta)
			}
			ni++
			xi++
		}
	}
}

// deltaTouch is deltaCount with crossing-event collection: each
// candidate whose count changes this slide is recorded once in touched2
// (deduplicated by slide generation) for maintainBorder to recheck.
func (s *Stream) deltaTouch(nodes []*trieNode, xs []hierarchy.GenID, delta int) {
	ni, xi := 0, 0
	for ni < len(nodes) && xi < len(xs) {
		switch {
		case nodes[ni].item < xs[xi]:
			ni++
		case nodes[ni].item > xs[xi]:
			xi++
		default:
			node := nodes[ni]
			if c := node.cand; c != nil {
				c.count += delta
				if c.touched != s.slideGen {
					c.touched = s.slideGen
					s.touched2 = append(s.touched2, c)
				}
			}
			if len(node.children) > 0 {
				s.deltaTouch(node.children, xs[xi+1:], delta)
			}
			ni++
			xi++
		}
	}
}

// ruleKey identifies a (body, head) pair across slides. Body GenIDs and
// head GenIDs are disjoint (bodies are non-target sales, heads target
// item/promotion pairs), so appending the head cannot collide with a
// longer body.
func ruleKey(items []hierarchy.GenID, head hierarchy.GenID) string {
	buf := make([]hierarchy.GenID, 0, len(items)+1)
	buf = append(buf, items...)
	buf = append(buf, head)
	return rules.BodyKey(buf)
}
