// Package hierarchy implements the concept hierarchy H of profit mining
// and its MOA extension MOA(H) (Definitions 2 and 3 of the paper).
//
// H is a rooted DAG whose leaves are items and whose internal nodes are
// concepts; target items are immediate children of the root ANY. MOA(H)
// extends H by hanging, below each item, the lattice of the item's
// promotion codes ordered by favorability: a more favorable promotion code
// is an ancestor ("concept") of a less favorable one, so that a sale at an
// unfavorable code is evidence for every more favorable code of the same
// item — the paper's "shopping on unavailability" behaviour.
//
// The compiled form is a Space: every generalized sale — a concept C, an
// item I, or an item/promotion pair ⟨I,P⟩ — is interned to a dense GenID,
// and the generalization relation, sale expansions and head sets are all
// precomputed so the miner and the recommender operate on sorted integer
// slices.
package hierarchy

import (
	"fmt"
	"sort"

	"profitmining/internal/model"
)

// GenID identifies a generalized sale (a node of MOA(H)) within a Space.
// IDs are dense, starting at 0 (the root ANY).
type GenID int32

// Kind classifies the nodes of MOA(H).
type Kind uint8

const (
	// KindRoot is the single root concept ANY.
	KindRoot Kind = iota
	// KindConcept is a named category (internal node of H).
	KindConcept
	// KindItem is an item node (leaf of H, root of the item's promo lattice).
	KindItem
	// KindItemPromo is a generalized sale ⟨I, P⟩.
	KindItemPromo
)

func (k Kind) String() string {
	switch k {
	case KindRoot:
		return "root"
	case KindConcept:
		return "concept"
	case KindItem:
		return "item"
	case KindItemPromo:
		return "item-promo"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Builder assembles a concept hierarchy H over a catalog. The zero Builder
// is not usable; call NewBuilder.
//
// Concepts must be registered before they are referenced as parents, which
// guarantees acyclicity by construction. Items not explicitly placed are
// children of the root; target items are always children of the root
// (Section 2: "target items are (immediate) children of the root ANY"),
// and placing one under a concept is an error at Compile time.
type Builder struct {
	catalog      *model.Catalog
	conceptNames []string
	conceptIdx   map[string]int
	conceptPar   [][]int                // parent concept indexes; empty = child of root
	itemPar      map[model.ItemID][]int // item → parent concept indexes
}

// NewBuilder returns a Builder for the given catalog.
func NewBuilder(catalog *model.Catalog) *Builder {
	return &Builder{
		catalog:    catalog,
		conceptIdx: make(map[string]int),
		itemPar:    make(map[model.ItemID][]int),
	}
}

// AddConcept registers a concept under the given parent concepts. With no
// parents the concept is a child of the root. All parents must have been
// registered already; AddConcept panics otherwise (hierarchies are built
// from trusted construction code).
func (b *Builder) AddConcept(name string, parents ...string) {
	if name == "" || name == "ANY" {
		panic(fmt.Sprintf("hierarchy: invalid concept name %q", name))
	}
	if _, dup := b.conceptIdx[name]; dup {
		panic(fmt.Sprintf("hierarchy: duplicate concept %q", name))
	}
	idx := len(b.conceptNames)
	b.conceptNames = append(b.conceptNames, name)
	b.conceptIdx[name] = idx
	b.conceptPar = append(b.conceptPar, b.resolve(parents))
}

// PlaceItem places an item under the given parent concepts. Calling
// PlaceItem again for the same item replaces the previous placement.
func (b *Builder) PlaceItem(item model.ItemID, parents ...string) {
	b.itemPar[item] = b.resolve(parents)
}

func (b *Builder) resolve(parents []string) []int {
	var out []int
	for _, p := range parents {
		idx, ok := b.conceptIdx[p]
		if !ok {
			panic(fmt.Sprintf("hierarchy: unknown parent concept %q", p))
		}
		out = append(out, idx)
	}
	return out
}

// Options configures compilation of a hierarchy into a Space.
type Options struct {
	// MOA enables the MOA(H) extension: favorability ancestors between
	// promotion codes of the same item. Without MOA, a generalized sale
	// ⟨I,P⟩ only generalizes sales under exactly P.
	MOA bool
}

// Flat compiles the trivial hierarchy (all items children of ANY) over the
// catalog. This is the hierarchy of the paper's synthetic experiments.
func Flat(catalog *model.Catalog, opts Options) *Space {
	s, err := NewBuilder(catalog).Compile(opts)
	if err != nil {
		// Unreachable: a flat hierarchy over a catalog cannot be invalid.
		panic(err)
	}
	return s
}

// Compile validates the hierarchy and interns MOA(H) into a Space.
func (b *Builder) Compile(opts Options) (*Space, error) {
	cat := b.catalog
	if cat == nil || cat.NumItems() == 0 {
		return nil, fmt.Errorf("hierarchy: empty catalog")
	}
	for id, parents := range b.itemPar {
		it := cat.Item(id)
		if it.Target && len(parents) > 0 {
			return nil, fmt.Errorf("hierarchy: target item %q must be a child of the root", it.Name)
		}
	}

	s := &Space{catalog: cat, opts: opts}

	// Node layout: root, then concepts in insertion order, then item nodes
	// in item-ID order, then ⟨I,P⟩ nodes in promo-ID order. This makes
	// GenIDs deterministic for a given construction sequence.
	n := 1 + len(b.conceptNames) + cat.NumItems() + cat.NumPromos()
	s.kind = make([]Kind, 0, n)
	s.name = make([]string, 0, n)
	s.item = make([]model.ItemID, 0, n)
	s.promo = make([]model.PromoID, 0, n)
	s.ancestors = make([][]GenID, 0, n)

	add := func(k Kind, name string, item model.ItemID, promo model.PromoID, anc []GenID) GenID {
		id := GenID(len(s.kind))
		s.kind = append(s.kind, k)
		s.name = append(s.name, name)
		s.item = append(s.item, item)
		s.promo = append(s.promo, promo)
		sort.Slice(anc, func(i, j int) bool { return anc[i] < anc[j] })
		s.ancestors = append(s.ancestors, anc)
		return id
	}

	root := add(KindRoot, "ANY", 0, 0, nil)

	// Concepts: strict ancestors = union of parents' ancestors + parents.
	conceptID := make([]GenID, len(b.conceptNames))
	for i, name := range b.conceptNames {
		anc := map[GenID]bool{root: true}
		for _, p := range b.conceptPar[i] {
			pid := conceptID[p]
			anc[pid] = true
			for _, a := range s.ancestors[pid] {
				anc[a] = true
			}
		}
		conceptID[i] = add(KindConcept, name, 0, 0, keys(anc))
	}

	// Item nodes.
	s.itemNode = make([]GenID, cat.NumItems()+1)
	for _, it := range cat.Items() {
		anc := map[GenID]bool{root: true}
		for _, p := range b.itemPar[it.ID] {
			pid := conceptID[p]
			anc[pid] = true
			for _, a := range s.ancestors[pid] {
				anc[a] = true
			}
		}
		s.itemNode[it.ID] = add(KindItem, it.Name, it.ID, 0, keys(anc))
	}

	// ⟨I,P⟩ nodes. Under MOA the strict ancestors within the lattice are
	// the strictly more favorable codes of the same item.
	s.promoNode = make([]GenID, cat.NumPromos()+1)
	for _, it := range cat.Items() {
		for _, pid := range cat.Promos(it.ID) {
			in := s.itemNode[it.ID]
			anc := map[GenID]bool{in: true}
			for _, a := range s.ancestors[in] {
				anc[a] = true
			}
			s.promoNode[pid] = add(KindItemPromo,
				fmt.Sprintf("⟨%s,%s⟩", it.Name, promoLabel(cat.Promo(pid))),
				it.ID, pid, keys(anc))
		}
	}
	if opts.MOA {
		for _, it := range cat.Items() {
			promos := cat.Promos(it.ID)
			for _, pid := range promos {
				node := s.promoNode[pid]
				anc := map[GenID]bool{}
				for _, a := range s.ancestors[node] {
					anc[a] = true
				}
				p := cat.Promo(pid)
				for _, qid := range promos {
					if qid != pid && model.MoreFavorable(cat.Promo(qid), p) {
						anc[s.promoNode[qid]] = true
					}
				}
				s.ancestors[node] = sorted(keys(anc))
			}
		}
	}

	s.buildExpansions()
	return s, nil
}

func promoLabel(p model.PromoCode) string {
	if p.Packing == 1 { //lint:allow floatcmp -- Packing is a unit count stored as float64; exactly 1 means a single-unit promo label
		return fmt.Sprintf("$%.4g", p.Price)
	}
	return fmt.Sprintf("$%.4g/%.4g-pack", p.Price, p.Packing)
}

func keys(m map[GenID]bool) []GenID {
	out := make([]GenID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func sorted(ids []GenID) []GenID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
