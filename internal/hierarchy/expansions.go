package hierarchy

import (
	"slices"

	"profitmining/internal/model"
)

// Expansions is the pooled, offset-based form of the per-promotion sale
// expansions: the expansion of promo p occupies Pool[Off[p]:Off[p+1]],
// sorted ascending and excluding the root. Promo IDs are 1-based, so
// Off has NumPromos+2 entries and Off[0] == Off[1] == 0.
//
// The layout is shared between a compiled Space (which builds it) and a
// sealed arena model (which aliases it straight out of the mapped
// file), so both serve baskets through the identical merge code below.
type Expansions struct {
	Off  []int32
	Pool []GenID
}

// PackExpansions pools per-promo expansion lists (indexed by 1-based
// promo ID; index 0 unused) into the offset form.
func PackExpansions(perPromo [][]GenID) Expansions {
	e := Expansions{Off: make([]int32, len(perPromo)+1)}
	total := 0
	for _, l := range perPromo {
		total += len(l)
	}
	e.Pool = make([]GenID, 0, total)
	for p, l := range perPromo {
		e.Off[p] = int32(len(e.Pool))
		e.Pool = append(e.Pool, l...)
		e.Off[p+1] = int32(len(e.Pool))
	}
	return e
}

// NumPromos returns the number of promotion codes covered.
func (e Expansions) NumPromos() int {
	if len(e.Off) < 2 {
		return 0
	}
	return len(e.Off) - 2
}

// Of returns the expansion of promo p. The returned slice must not be
// modified.
//
//hot:path
func (e Expansions) Of(p model.PromoID) []GenID {
	return e.Pool[e.Off[p]:e.Off[p+1]]
}

// maxMergeWays is the widest basket the cursor-based k-way merge of
// ExpandBasketInto handles with stack-resident cursors. Wider baskets
// fall back to gather-sort-dedup, which stays allocation-free as long
// as dst has capacity.
const maxMergeWays = 16

// ExpandBasketInto appends the sorted, deduplicated union of the
// basket's per-sale expansions into dst's backing storage — the serving
// hot path calls it once per request with a pooled buffer. Each
// ⟨item, promo⟩ leaf has a fixed, sorted ancestor expansion precomputed
// at space-compile (or model-seal) time, so expanding a basket is a
// k-way merge of k precomputed sorted lists: no per-call sort, no dedup
// pass, no allocation once dst has grown to a basket's steady-state
// size.
//
//hot:path
func (e Expansions) ExpandBasketInto(dst []GenID, sales []model.Sale) []GenID {
	dst = dst[:0]
	switch len(sales) {
	case 0:
		return dst
	case 1:
		return append(dst, e.Of(sales[0].Promo)...)
	}
	if len(sales) <= maxMergeWays {
		// k-way merge over the unconsumed suffixes of the k lists:
		// repeatedly emit the smallest head and advance every list
		// sitting on it (which also deduplicates — shared ancestors
		// appear in several lists). Exhausted lists are swap-removed so
		// k shrinks, and the final survivor is appended wholesale — the
		// common case once the per-item tails diverge.
		var lists [maxMergeWays][]GenID
		k := 0
		for i := range sales {
			if l := e.Of(sales[i].Promo); len(l) > 0 {
				lists[k] = l
				k++
			}
		}
		for k > 1 {
			if k == 2 {
				return merge2(dst, lists[0], lists[1])
			}
			min := lists[0][0]
			for i := 1; i < k; i++ {
				if h := lists[i][0]; h < min {
					min = h
				}
			}
			dst = append(dst, min)
			for i := 0; i < k; {
				if lists[i][0] == min {
					if lists[i] = lists[i][1:]; len(lists[i]) == 0 {
						k--
						lists[i] = lists[k]
						continue
					}
				}
				i++
			}
		}
		if k == 1 {
			dst = append(dst, lists[0]...)
		}
		return dst
	}
	// Gather, sort, dedup in place — still allocation-free given capacity.
	for _, sl := range sales {
		dst = append(dst, e.Of(sl.Promo)...)
	}
	slices.Sort(dst)
	w := 0
	for i, g := range dst {
		if i == 0 || g != dst[w-1] {
			dst[w] = g
			w++
		}
	}
	return dst[:w]
}

// merge2 appends the sorted-set union of two sorted lists to dst.
//
//hot:path
func merge2(dst []GenID, a, b []GenID) []GenID {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}
