package hierarchy

import (
	"fmt"
	"math/rand"
	"testing"

	"profitmining/internal/model"
)

// randomSpace builds a random catalog and concept DAG: nc concepts with
// random parents among earlier concepts, ni non-target items placed under
// random concepts (or the root), each with 1–3 promos on a price ladder,
// plus one target item.
func randomSpace(t *testing.T, rng *rand.Rand, moa bool) (*Space, *model.Catalog) {
	t.Helper()
	cat := model.NewCatalog()
	nc := 2 + rng.Intn(6)
	ni := 2 + rng.Intn(6)

	b := NewBuilder(cat)
	names := make([]string, nc)
	for i := range names {
		names[i] = fmt.Sprintf("c%02d", i)
		var parents []string
		for j := 0; j < i; j++ {
			if rng.Float64() < 0.3 {
				parents = append(parents, names[j])
			}
		}
		b.AddConcept(names[i], parents...)
	}
	for i := 0; i < ni; i++ {
		item := cat.AddItem(fmt.Sprintf("i%02d", i), false)
		for p := 0; p <= rng.Intn(3); p++ {
			cat.AddPromo(item, float64(p+1), 0.5, 1)
		}
		if rng.Float64() < 0.8 {
			var parents []string
			for _, n := range names {
				if rng.Float64() < 0.3 {
					parents = append(parents, n)
				}
			}
			b.PlaceItem(item, parents...)
		}
	}
	tgt := cat.AddItem("target", true)
	cat.AddPromo(tgt, 10, 5, 1)

	s, err := b.Compile(Options{MOA: moa})
	if err != nil {
		t.Fatal(err)
	}
	return s, cat
}

// naiveReach computes "a generalizes-or-equals b" by walking ancestor
// lists transitively — the reference for GeneralizesOrEqual.
func naiveReach(s *Space, a, b GenID) bool {
	if a == b {
		return true
	}
	seen := map[GenID]bool{}
	var walk func(GenID) bool
	walk = func(n GenID) bool {
		if n == a {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		for _, p := range s.Ancestors(n) {
			if walk(p) {
				return true
			}
		}
		return false
	}
	return walk(b)
}

func TestRandomDAGGeneralization(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		s, _ := randomSpace(t, rng, trial%2 == 0)
		n := s.NumNodes()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				ga, gb := GenID(a), GenID(b)
				got := s.GeneralizesOrEqual(ga, gb)
				want := naiveReach(s, ga, gb)
				if got != want {
					t.Fatalf("trial %d: GeneralizesOrEqual(%s, %s) = %v, reachability = %v",
						trial, s.Name(ga), s.Name(gb), got, want)
				}
			}
		}
		// The root generalizes every node.
		for g := 0; g < n; g++ {
			if !s.GeneralizesOrEqual(s.Root(), GenID(g)) {
				t.Fatalf("trial %d: root does not generalize %s", trial, s.Name(GenID(g)))
			}
		}
	}
}

func TestRandomDAGExpansionConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 40; trial++ {
		s, cat := randomSpace(t, rng, true)
		for _, it := range cat.Items() {
			if it.Target {
				continue
			}
			for _, pid := range cat.Promos(it.ID) {
				sale := model.Sale{Item: it.ID, Promo: pid, Qty: 1}
				exp := s.ExpandSale(sale)
				// Exactly the non-root generalizers of the promo node.
				node := s.PromoNode(pid)
				want := map[GenID]bool{node: true}
				for _, a := range s.Ancestors(node) {
					if s.Kind(a) != KindRoot {
						want[a] = true
					}
				}
				if len(exp) != len(want) {
					t.Fatalf("trial %d: expansion size %d, want %d", trial, len(exp), len(want))
				}
				for _, g := range exp {
					if !want[g] {
						t.Fatalf("trial %d: expansion contains %s unexpectedly", trial, s.Name(g))
					}
				}
			}
		}
	}
}

func TestRandomDAGAntichainSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 30; trial++ {
		s, _ := randomSpace(t, rng, true)
		n := s.NumNodes()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if s.Comparable(GenID(a), GenID(b)) != s.Comparable(GenID(b), GenID(a)) {
					t.Fatalf("trial %d: Comparable not symmetric", trial)
				}
			}
		}
	}
}
