package hierarchy

import (
	"sort"

	"profitmining/internal/model"
)

// Space is the compiled, immutable form of MOA(H): an interned universe of
// generalized sales with precomputed generalization, expansion and head
// relations. A Space is safe for concurrent use.
type Space struct {
	catalog *model.Catalog
	opts    Options

	kind  []Kind
	name  []string
	item  []model.ItemID  // valid for KindItem / KindItemPromo
	promo []model.PromoID // valid for KindItemPromo

	// ancestors[g] lists the strict ancestors of g (nodes that generalize
	// g), sorted ascending. The root is an ancestor of every other node.
	ancestors [][]GenID

	itemNode  []GenID // by ItemID
	promoNode []GenID // by PromoID

	// exp pools, per promotion code, every generalized sale of a sale
	// under that code, sorted ascending, excluding the root (ANY carries
	// no information: it generalizes everything). The pooled offset form
	// is shared with sealed arena models, so both expand baskets through
	// the same merge code.
	exp Expansions

	// headsOf[promoID], for promos of target items, lists every head
	// ⟨I,P⟩ that generalizes a target sale under that promo (P ⪯ promo),
	// sorted ascending.
	headsOf [][]GenID

	allHeads       []GenID
	bodyCandidates []GenID
}

func (s *Space) buildExpansions() {
	cat := s.catalog
	saleExpansion := make([][]GenID, cat.NumPromos()+1)
	s.headsOf = make([][]GenID, cat.NumPromos()+1)

	for _, it := range cat.Items() {
		for _, pid := range cat.Promos(it.ID) {
			node := s.promoNode[pid]
			exp := make([]GenID, 0, len(s.ancestors[node])+1)
			exp = append(exp, node)
			for _, a := range s.ancestors[node] {
				if s.kind[a] != KindRoot {
					exp = append(exp, a)
				}
			}
			saleExpansion[pid] = sorted(exp)

			if it.Target {
				var heads []GenID
				for _, g := range saleExpansion[pid] {
					if s.kind[g] == KindItemPromo {
						heads = append(heads, g)
					}
				}
				s.headsOf[pid] = heads // already sorted: subsequence of a sorted slice
			}
		}
	}
	s.exp = PackExpansions(saleExpansion)

	for g := range s.kind {
		id := GenID(g)
		switch s.kind[g] {
		case KindItemPromo:
			if cat.Item(s.item[g]).Target {
				s.allHeads = append(s.allHeads, id)
			} else {
				s.bodyCandidates = append(s.bodyCandidates, id)
			}
		case KindItem:
			if !cat.Item(s.item[g]).Target {
				s.bodyCandidates = append(s.bodyCandidates, id)
			}
		case KindConcept:
			s.bodyCandidates = append(s.bodyCandidates, id)
		}
	}
}

// Catalog returns the catalog the space was compiled over.
func (s *Space) Catalog() *model.Catalog { return s.catalog }

// MOA reports whether the space was compiled with the MOA extension.
func (s *Space) MOA() bool { return s.opts.MOA }

// NumNodes returns the number of generalized sales, including the root.
func (s *Space) NumNodes() int { return len(s.kind) }

// Root returns the GenID of ANY.
func (s *Space) Root() GenID { return 0 }

// Kind returns the kind of g.
func (s *Space) Kind(g GenID) Kind { return s.kind[g] }

// Name returns a human-readable label for g, e.g. "Meat" or "⟨Egg,$3.5⟩".
func (s *Space) Name(g GenID) string { return s.name[g] }

// ItemOf returns the item of an item or item-promo node (0 otherwise).
func (s *Space) ItemOf(g GenID) model.ItemID { return s.item[g] }

// PromoOf returns the promotion code of an item-promo node (0 otherwise).
func (s *Space) PromoOf(g GenID) model.PromoID { return s.promo[g] }

// ItemNode returns the GenID of the item node for item.
func (s *Space) ItemNode(item model.ItemID) GenID { return s.itemNode[item] }

// PromoNode returns the GenID of the ⟨item, promo⟩ node for promo.
func (s *Space) PromoNode(promo model.PromoID) GenID { return s.promoNode[promo] }

// Ancestors returns the strict ancestors of g (every node that properly
// generalizes g), sorted ascending. The returned slice must not be
// modified.
func (s *Space) Ancestors(g GenID) []GenID { return s.ancestors[g] }

// GeneralizesOrEqual reports whether a = b or a is an ancestor of b, i.e.
// a is a generalized sale of b in the reflexive closure of Definition 3.
func (s *Space) GeneralizesOrEqual(a, b GenID) bool {
	if a == b {
		return true
	}
	anc := s.ancestors[b]
	i := sort.Search(len(anc), func(i int) bool { return anc[i] >= a })
	return i < len(anc) && anc[i] == a
}

// Comparable reports whether one of a, b generalizes the other (including
// equality). Rule bodies must be antichains: no two comparable elements
// (Definition 4).
func (s *Space) Comparable(a, b GenID) bool {
	return s.GeneralizesOrEqual(a, b) || s.GeneralizesOrEqual(b, a)
}

// ExpandSale returns every generalized sale of the given sale, sorted
// ascending and excluding the root. The returned slice must not be
// modified.
func (s *Space) ExpandSale(sale model.Sale) []GenID {
	return s.exp.Of(sale.Promo)
}

// Expansions returns the pooled per-promotion expansion lists — the
// layout model sealing persists verbatim. Must not be modified.
func (s *Space) Expansions() Expansions { return s.exp }

// ExpandBasket returns the sorted, deduplicated union of the expansions of
// the given sales — the set of all generalized sales the basket supports.
func (s *Space) ExpandBasket(sales []model.Sale) []GenID {
	if len(sales) == 0 {
		return nil
	}
	var total int
	for _, sl := range sales {
		total += len(s.exp.Of(sl.Promo))
	}
	return s.ExpandBasketInto(make([]GenID, 0, total), sales)
}

// ExpandBasketInto is ExpandBasket writing into dst's backing storage —
// the serving hot path calls it once per request with a pooled buffer.
// The merge itself lives on Expansions so compiled spaces and sealed
// arena models share it; the result is byte-identical to ExpandBasket.
//
//hot:path
func (s *Space) ExpandBasketInto(dst []GenID, sales []model.Sale) []GenID {
	return s.exp.ExpandBasketInto(dst, sales)
}

// HeadsOf returns every recommendation head ⟨I,P⟩ that generalizes the
// given target sale: under MOA, all codes P ⪯ the sale's code; without
// MOA, just the sale's own code. Sorted ascending; must not be modified.
func (s *Space) HeadsOf(target model.Sale) []GenID {
	return s.headsOf[target.Promo]
}

// HeadGeneralizes reports whether the head ⟨I,P⟩ generalizes the target
// sale — the hit test for recommendations.
func (s *Space) HeadGeneralizes(head GenID, target model.Sale) bool {
	hs := s.headsOf[target.Promo]
	i := sort.Search(len(hs), func(i int) bool { return hs[i] >= head })
	return i < len(hs) && hs[i] == head
}

// AllHeads returns every possible recommendation head: the ⟨I,P⟩ nodes of
// all target items, sorted ascending. Must not be modified.
func (s *Space) AllHeads() []GenID { return s.allHeads }

// BodyCandidates returns every generalized sale that may appear in a rule
// body: concepts, non-target items, and non-target ⟨I,P⟩ nodes, excluding
// the root. Sorted ascending; must not be modified.
func (s *Space) BodyCandidates() []GenID { return s.bodyCandidates }

// IsAntichain reports whether no two distinct elements of body are
// comparable. body need not be sorted.
func (s *Space) IsAntichain(body []GenID) bool {
	for i := range body {
		for j := i + 1; j < len(body); j++ {
			if s.Comparable(body[i], body[j]) {
				return false
			}
		}
	}
	return true
}

// SetGeneralizes reports whether the set a generalizes the set b: every
// element of a generalizes-or-equals some element of b (Definition 3
// lifted to sets, reflexive closure). An empty a generalizes everything.
func (s *Space) SetGeneralizes(a, b []GenID) bool {
	for _, g := range a {
		ok := false
		for _, h := range b {
			if s.GeneralizesOrEqual(g, h) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// BodyMatches reports whether a sorted rule body matches a sorted expanded
// basket (as produced by ExpandBasket): body ⊆ expanded. This is
// equivalent to SetGeneralizes(body, raw sales) because the expansion
// already contains every generalized sale of the basket.
func (s *Space) BodyMatches(body, expanded []GenID) bool {
	i := 0
	for _, g := range body {
		for i < len(expanded) && expanded[i] < g {
			i++
		}
		if i >= len(expanded) || expanded[i] != g {
			return false
		}
		i++
	}
	return true
}
