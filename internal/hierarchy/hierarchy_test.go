package hierarchy

import (
	"math/rand"
	"sort"
	"testing"

	"profitmining/internal/model"
)

// example2 builds the paper's Example 2: non-target item Flaked_Chicken
// (FC) under Chicken ⊂ Meat ⊂ Food ⊂ ANY with promotion codes $3, $3.5,
// $3.8, and target item Sunchip with promotion codes $3.8, $4.5, $5.
type example2 struct {
	cat                *model.Catalog
	fc, sun            model.ItemID
	fc3, fc35, fc38    model.PromoID
	sun38, sun45, sun5 model.PromoID
	builder            *Builder
}

func buildExample2(t *testing.T) *example2 {
	t.Helper()
	e := &example2{cat: model.NewCatalog()}
	e.fc = e.cat.AddItem("FC", false)
	e.fc3 = e.cat.AddPromo(e.fc, 3.0, 1.0, 1)
	e.fc35 = e.cat.AddPromo(e.fc, 3.5, 1.0, 1)
	e.fc38 = e.cat.AddPromo(e.fc, 3.8, 1.0, 1)
	e.sun = e.cat.AddItem("Sunchip", true)
	e.sun38 = e.cat.AddPromo(e.sun, 3.8, 2.0, 1)
	e.sun45 = e.cat.AddPromo(e.sun, 4.5, 2.0, 1)
	e.sun5 = e.cat.AddPromo(e.sun, 5.0, 2.0, 1)

	b := NewBuilder(e.cat)
	b.AddConcept("Food")
	b.AddConcept("Meat", "Food")
	b.AddConcept("Chicken", "Meat")
	b.PlaceItem(e.fc, "Chicken")
	e.builder = b
	return e
}

func compile(t *testing.T, b *Builder, opts Options) *Space {
	t.Helper()
	s, err := b.Compile(opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return s
}

func names(s *Space, ids []GenID) []string {
	out := make([]string, len(ids))
	for i, g := range ids {
		out[i] = s.Name(g)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestExample2MOAExpansion(t *testing.T) {
	e := buildExample2(t)
	s := compile(t, e.builder, Options{MOA: true})

	// ⟨FC,$3.8⟩ and its ancestors are generalized sales of sales at $3.8:
	// the $3.8, $3.5 and $3 nodes, FC, Chicken, Meat, Food (root excluded).
	got := names(s, s.ExpandSale(model.Sale{Item: e.fc, Promo: e.fc38, Qty: 1}))
	want := []string{"Chicken", "FC", "Food", "Meat", "⟨FC,$3.5⟩", "⟨FC,$3.8⟩", "⟨FC,$3⟩"}
	if !equalStrings(got, want) {
		t.Errorf("ExpandSale($3.8) = %v, want %v", got, want)
	}

	// A sale at $3.5 generalizes to $3.5 and $3 but not $3.8.
	got = names(s, s.ExpandSale(model.Sale{Item: e.fc, Promo: e.fc35, Qty: 1}))
	want = []string{"Chicken", "FC", "Food", "Meat", "⟨FC,$3.5⟩", "⟨FC,$3⟩"}
	if !equalStrings(got, want) {
		t.Errorf("ExpandSale($3.5) = %v, want %v", got, want)
	}

	// A sale at $3 generalizes only to $3.
	got = names(s, s.ExpandSale(model.Sale{Item: e.fc, Promo: e.fc3, Qty: 1}))
	want = []string{"Chicken", "FC", "Food", "Meat", "⟨FC,$3⟩"}
	if !equalStrings(got, want) {
		t.Errorf("ExpandSale($3) = %v, want %v", got, want)
	}
}

func TestExample2Heads(t *testing.T) {
	e := buildExample2(t)
	s := compile(t, e.builder, Options{MOA: true})

	// A target sale at $5 is hit by recommending $5, $4.5 or $3.8.
	got := names(s, s.HeadsOf(model.Sale{Item: e.sun, Promo: e.sun5, Qty: 1}))
	want := []string{"⟨Sunchip,$3.8⟩", "⟨Sunchip,$4.5⟩", "⟨Sunchip,$5⟩"}
	if !equalStrings(got, want) {
		t.Errorf("HeadsOf($5) = %v, want %v", got, want)
	}
	// At $3.8 only the exact code hits.
	got = names(s, s.HeadsOf(model.Sale{Item: e.sun, Promo: e.sun38, Qty: 1}))
	want = []string{"⟨Sunchip,$3.8⟩"}
	if !equalStrings(got, want) {
		t.Errorf("HeadsOf($3.8) = %v, want %v", got, want)
	}

	if got := len(s.AllHeads()); got != 3 {
		t.Errorf("AllHeads = %d nodes, want 3 (Sunchip promos)", got)
	}
	for _, h := range s.AllHeads() {
		if s.Kind(h) != KindItemPromo || s.ItemOf(h) != e.sun {
			t.Errorf("AllHeads contains %s", s.Name(h))
		}
	}
}

func TestHeadGeneralizes(t *testing.T) {
	e := buildExample2(t)
	s := compile(t, e.builder, Options{MOA: true})
	sale := model.Sale{Item: e.sun, Promo: e.sun45, Qty: 2}
	if !s.HeadGeneralizes(s.PromoNode(e.sun45), sale) {
		t.Error("exact head must generalize")
	}
	if !s.HeadGeneralizes(s.PromoNode(e.sun38), sale) {
		t.Error("more favorable head must generalize under MOA")
	}
	if s.HeadGeneralizes(s.PromoNode(e.sun5), sale) {
		t.Error("less favorable head must not generalize")
	}
}

func TestNoMOAExactPromoOnly(t *testing.T) {
	e := buildExample2(t)
	s := compile(t, e.builder, Options{MOA: false})

	got := names(s, s.ExpandSale(model.Sale{Item: e.fc, Promo: e.fc38, Qty: 1}))
	want := []string{"Chicken", "FC", "Food", "Meat", "⟨FC,$3.8⟩"}
	if !equalStrings(got, want) {
		t.Errorf("ExpandSale($3.8, no MOA) = %v, want %v", got, want)
	}
	heads := names(s, s.HeadsOf(model.Sale{Item: e.sun, Promo: e.sun5, Qty: 1}))
	if !equalStrings(heads, []string{"⟨Sunchip,$5⟩"}) {
		t.Errorf("HeadsOf($5, no MOA) = %v", heads)
	}
}

func TestBodyCandidatesExcludeTargetsAndRoot(t *testing.T) {
	e := buildExample2(t)
	s := compile(t, e.builder, Options{MOA: true})
	for _, g := range s.BodyCandidates() {
		if s.Kind(g) == KindRoot {
			t.Error("BodyCandidates contains the root")
		}
		if s.ItemOf(g) == e.sun {
			t.Errorf("BodyCandidates contains target node %s", s.Name(g))
		}
	}
	// Food, Meat, Chicken, FC, 3 FC promos = 7 candidates.
	if got := len(s.BodyCandidates()); got != 7 {
		t.Errorf("BodyCandidates = %d nodes, want 7", got)
	}
}

func TestGeneralizesOrEqual(t *testing.T) {
	e := buildExample2(t)
	s := compile(t, e.builder, Options{MOA: true})

	food, _ := conceptByName(s, "Food")
	chicken, _ := conceptByName(s, "Chicken")
	fcNode := s.ItemNode(e.fc)
	fc3 := s.PromoNode(e.fc3)
	fc38 := s.PromoNode(e.fc38)

	cases := []struct {
		a, b GenID
		want bool
	}{
		{s.Root(), fc38, true},
		{food, fc38, true},
		{chicken, fcNode, true},
		{fcNode, fc3, true},
		{fc3, fc38, true},  // more favorable price generalizes less favorable
		{fc38, fc3, false}, // not vice versa
		{fc38, fc38, true}, // reflexive
		{fcNode, chicken, false},
		{fc3, s.PromoNode(e.sun38), false}, // cross-item
	}
	for _, tc := range cases {
		if got := s.GeneralizesOrEqual(tc.a, tc.b); got != tc.want {
			t.Errorf("GeneralizesOrEqual(%s, %s) = %v, want %v", s.Name(tc.a), s.Name(tc.b), got, tc.want)
		}
	}
}

func conceptByName(s *Space, name string) (GenID, bool) {
	for g := 0; g < s.NumNodes(); g++ {
		if s.Name(GenID(g)) == name {
			return GenID(g), true
		}
	}
	return 0, false
}

func TestGeneralizationIsTransitiveAndAntisymmetric(t *testing.T) {
	e := buildExample2(t)
	s := compile(t, e.builder, Options{MOA: true})
	n := s.NumNodes()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			ga, gb := GenID(a), GenID(b)
			if a != b && s.GeneralizesOrEqual(ga, gb) && s.GeneralizesOrEqual(gb, ga) {
				t.Errorf("antisymmetry violated: %s ↔ %s", s.Name(ga), s.Name(gb))
			}
			for c := 0; c < n; c++ {
				gc := GenID(c)
				if s.GeneralizesOrEqual(ga, gb) && s.GeneralizesOrEqual(gb, gc) && !s.GeneralizesOrEqual(ga, gc) {
					t.Errorf("transitivity violated: %s ⊒ %s ⊒ %s", s.Name(ga), s.Name(gb), s.Name(gc))
				}
			}
		}
	}
}

func TestAncestorsSortedAndConsistent(t *testing.T) {
	e := buildExample2(t)
	s := compile(t, e.builder, Options{MOA: true})
	for g := 0; g < s.NumNodes(); g++ {
		anc := s.Ancestors(GenID(g))
		if !sort.SliceIsSorted(anc, func(i, j int) bool { return anc[i] < anc[j] }) {
			t.Errorf("Ancestors(%s) not sorted", s.Name(GenID(g)))
		}
		for _, a := range anc {
			if a == GenID(g) {
				t.Errorf("node %s is its own strict ancestor", s.Name(GenID(g)))
			}
			if !s.GeneralizesOrEqual(a, GenID(g)) {
				t.Errorf("ancestor %s does not generalize %s", s.Name(a), s.Name(GenID(g)))
			}
		}
	}
}

func TestDAGMultipleParents(t *testing.T) {
	cat := model.NewCatalog()
	it := cat.AddItem("Tomato", false)
	cat.AddPromo(it, 1, 0.5, 1)
	tgt := cat.AddItem("Basil", true)
	cat.AddPromo(tgt, 2, 1, 1)

	b := NewBuilder(cat)
	b.AddConcept("Fruit")
	b.AddConcept("Vegetable")
	b.AddConcept("Salad", "Fruit", "Vegetable")
	b.PlaceItem(it, "Salad")
	s := compile(t, b, Options{MOA: true})

	fruit, _ := conceptByName(s, "Fruit")
	veg, _ := conceptByName(s, "Vegetable")
	tom := s.ItemNode(it)
	if !s.GeneralizesOrEqual(fruit, tom) || !s.GeneralizesOrEqual(veg, tom) {
		t.Error("DAG item must be generalized by all parent lineages")
	}
	if s.Comparable(fruit, veg) {
		t.Error("sibling concepts must be incomparable")
	}
}

func TestTargetUnderConceptRejected(t *testing.T) {
	cat := model.NewCatalog()
	tgt := cat.AddItem("TV", true)
	cat.AddPromo(tgt, 100, 50, 1)
	b := NewBuilder(cat)
	b.AddConcept("Appliance")
	b.PlaceItem(tgt, "Appliance")
	if _, err := b.Compile(Options{}); err == nil {
		t.Error("placing a target item under a concept must fail")
	}
}

func TestBuilderPanics(t *testing.T) {
	cat := model.NewCatalog()
	cat.AddItem("A", false)
	b := NewBuilder(cat)

	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"empty concept name", func() { b.AddConcept("") }},
		{"ANY as concept", func() { b.AddConcept("ANY") }},
		{"unknown parent", func() { b.AddConcept("X", "Nope") }},
		{"duplicate concept", func() { b.AddConcept("C"); b.AddConcept("C") }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

func TestCompileEmptyCatalog(t *testing.T) {
	if _, err := NewBuilder(model.NewCatalog()).Compile(Options{}); err == nil {
		t.Error("empty catalog must fail to compile")
	}
}

func TestExpandBasket(t *testing.T) {
	e := buildExample2(t)
	s := compile(t, e.builder, Options{MOA: true})

	basket := []model.Sale{
		{Item: e.fc, Promo: e.fc38, Qty: 1},
		{Item: e.fc, Promo: e.fc35, Qty: 2},
	}
	exp := s.ExpandBasket(basket)
	if !sort.SliceIsSorted(exp, func(i, j int) bool { return exp[i] < exp[j] }) {
		t.Error("ExpandBasket not sorted")
	}
	for i := 1; i < len(exp); i++ {
		if exp[i] == exp[i-1] {
			t.Error("ExpandBasket contains duplicates")
		}
	}
	// Union of the two expansions: the $3.8 sale contributes the $3.8 node,
	// everything else is shared. 7 + 1 = wait: expansion($3.8) has 7 nodes,
	// expansion($3.5) has 6, union = 7.
	if len(exp) != 7 {
		t.Errorf("ExpandBasket = %d nodes, want 7", len(exp))
	}
	if len(s.ExpandBasket(nil)) != 0 {
		t.Error("ExpandBasket(nil) should be empty")
	}
}

func TestBodyMatchesAgainstNaive(t *testing.T) {
	e := buildExample2(t)
	s := compile(t, e.builder, Options{MOA: true})
	rng := rand.New(rand.NewSource(7))

	promos := []model.PromoID{e.fc3, e.fc35, e.fc38}
	cands := s.BodyCandidates()
	for trial := 0; trial < 500; trial++ {
		var basket []model.Sale
		for i := 0; i < 1+rng.Intn(2); i++ {
			basket = append(basket, model.Sale{Item: e.fc, Promo: promos[rng.Intn(len(promos))], Qty: 1})
		}
		exp := s.ExpandBasket(basket)

		bodyLen := rng.Intn(3)
		seen := map[GenID]bool{}
		body := make([]GenID, 0, bodyLen)
		for i := 0; i < bodyLen; i++ {
			g := cands[rng.Intn(len(cands))]
			if !seen[g] {
				seen[g] = true
				body = append(body, g)
			}
		}
		sort.Slice(body, func(i, j int) bool { return body[i] < body[j] })

		// Naive semantics (Definition 3): every body element generalizes
		// some sale of the basket.
		naive := true
		for _, g := range body {
			ok := false
			for _, sl := range basket {
				for _, h := range s.ExpandSale(sl) {
					if g == h {
						ok = true
					}
				}
			}
			if !ok {
				naive = false
				break
			}
		}
		if got := s.BodyMatches(body, exp); got != naive {
			t.Fatalf("BodyMatches(%v) = %v, naive = %v", names(s, body), got, naive)
		}
	}
}

func TestIsAntichain(t *testing.T) {
	e := buildExample2(t)
	s := compile(t, e.builder, Options{MOA: true})
	chicken, _ := conceptByName(s, "Chicken")
	meat, _ := conceptByName(s, "Meat")

	if !s.IsAntichain(nil) {
		t.Error("empty set is an antichain")
	}
	if !s.IsAntichain([]GenID{chicken}) {
		t.Error("singleton is an antichain")
	}
	if s.IsAntichain([]GenID{chicken, meat}) {
		t.Error("Chicken/Meat are comparable")
	}
	if s.IsAntichain([]GenID{s.PromoNode(e.fc3), s.PromoNode(e.fc38)}) {
		t.Error("MOA promo levels of one item are comparable")
	}
	if !s.IsAntichain([]GenID{s.PromoNode(e.fc3), s.PromoNode(e.sun38)}) {
		t.Error("promos of different items are incomparable")
	}
}

func TestSetGeneralizes(t *testing.T) {
	e := buildExample2(t)
	s := compile(t, e.builder, Options{MOA: true})
	meat, _ := conceptByName(s, "Meat")
	fc35 := s.PromoNode(e.fc35)
	fc38 := s.PromoNode(e.fc38)

	if !s.SetGeneralizes(nil, []GenID{fc38}) {
		t.Error("empty set generalizes everything")
	}
	if !s.SetGeneralizes([]GenID{meat}, []GenID{fc38}) {
		t.Error("{Meat} should generalize {⟨FC,$3.8⟩}")
	}
	if !s.SetGeneralizes([]GenID{fc35}, []GenID{fc38}) {
		t.Error("{⟨FC,$3.5⟩} should generalize {⟨FC,$3.8⟩} under MOA")
	}
	if s.SetGeneralizes([]GenID{fc38}, []GenID{fc35}) {
		t.Error("{⟨FC,$3.8⟩} should not generalize {⟨FC,$3.5⟩}")
	}
	if s.SetGeneralizes([]GenID{meat, fc38}, []GenID{fc35}) {
		t.Error("every element must generalize some element")
	}
}

func TestFlat(t *testing.T) {
	cat := model.NewCatalog()
	a := cat.AddItem("A", false)
	cat.AddPromo(a, 1, 0.5, 1)
	tgt := cat.AddItem("T", true)
	cat.AddPromo(tgt, 5, 2, 1)
	s := Flat(cat, Options{MOA: true})
	// Root + 2 items + 2 promo nodes.
	if s.NumNodes() != 5 {
		t.Errorf("flat space has %d nodes, want 5", s.NumNodes())
	}
	if !s.GeneralizesOrEqual(s.Root(), s.ItemNode(a)) {
		t.Error("root must generalize items in a flat hierarchy")
	}
}

func TestDeterministicGenIDs(t *testing.T) {
	build := func() *Space {
		e := buildExample2(t)
		return compile(t, e.builder, Options{MOA: true})
	}
	s1, s2 := build(), build()
	if s1.NumNodes() != s2.NumNodes() {
		t.Fatal("node counts differ across identical builds")
	}
	for g := 0; g < s1.NumNodes(); g++ {
		if s1.Name(GenID(g)) != s2.Name(GenID(g)) {
			t.Fatalf("node %d differs: %q vs %q", g, s1.Name(GenID(g)), s2.Name(GenID(g)))
		}
	}
}
