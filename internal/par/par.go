// Package par provides the deterministic worker-pool primitives behind
// the parallel model-build pipeline (mining's level-wise counting passes
// and core's covering-tree construction).
//
// Determinism contract: a computation parallelized with this package must
// produce byte-identical results for every worker count, including 1.
// Integer accumulation is order-independent, but floating-point addition
// is not associative, so Ordered fixes the summation tree instead of the
// schedule: work is split into fixed-size shards (ShardSize, independent
// of the worker count), each shard produces a partial result accumulated
// in element order, and partials are committed in ascending shard order
// on a single goroutine. Which goroutine computes a shard is scheduling;
// the arithmetic — shard boundaries and merge order — is not.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ShardSize is the fixed shard width used by Ordered. It must not depend
// on the worker count: the shard decomposition defines the floating-point
// merge order, so changing it changes results in the last ulp.
const ShardSize = 1024

// Workers resolves a Parallelism knob to a worker count: 0 (the unset
// default) means one worker per available CPU, anything below 1 clamps
// to strictly serial.
func Workers(parallelism int) int {
	if parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if parallelism < 1 {
		return 1
	}
	return parallelism
}

// NumShards returns the number of ShardSize-wide shards covering [0, n).
func NumShards(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + ShardSize - 1) / ShardSize
}

// shardBounds returns the half-open element range of shard s over [0, n).
func shardBounds(s, n int) (lo, hi int) {
	lo = s * ShardSize
	hi = lo + ShardSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// For runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns when all calls have completed. fn must touch only state owned
// by index i (plus immutable shared state), which makes the result
// independent of scheduling. With workers <= 1 it is a plain loop.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Claim small index blocks rather than single indices so cheap
	// per-element bodies don't serialize on the counter.
	const block = 64
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(block)) - block
				if lo >= n {
					return
				}
				hi := lo + block
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Ordered shards [0, n) into ShardSize-wide chunks, runs process for each
// shard on a pool of up to workers goroutines, and calls commit once per
// shard in ascending shard order on the calling goroutine.
//
// process receives the worker index (0 <= worker < workers) so call sites
// can keep per-worker scratch state (a worker index is only ever used by
// one goroutine); shard is the shard index and [lo, hi) its element
// range. The number of shards in flight — produced but not yet committed
// — is bounded by about twice the worker count, so pooled shard buffers
// stay bounded too.
//
// With workers <= 1 (or a single shard) everything runs on the calling
// goroutine, in shard order, through the same process/commit sequence:
// the serial path and the parallel path perform identical arithmetic.
func Ordered[T any](workers, n int, process func(worker, shard, lo, hi int) T, commit func(shard int, v T)) {
	shards := NumShards(n)
	if shards == 0 {
		return
	}
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			lo, hi := shardBounds(s, n)
			commit(s, process(0, s, lo, hi))
		}
		return
	}

	type result struct {
		shard int
		val   T
	}
	results := make(chan result, workers)
	// sem bounds shards claimed but not yet committed: a token is taken
	// before claiming a shard and released after its commit.
	sem := make(chan struct{}, 2*workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				sem <- struct{}{}
				s := int(next.Add(1)) - 1
				if s >= shards {
					<-sem
					return
				}
				lo, hi := shardBounds(s, n)
				results <- result{s, process(worker, s, lo, hi)}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reorder buffer: partials arrive in completion order and are
	// committed in shard order.
	pending := make(map[int]T, 2*workers)
	nextCommit := 0
	for r := range results {
		pending[r.shard] = r.val
		for {
			v, ok := pending[nextCommit]
			if !ok {
				break
			}
			delete(pending, nextCommit)
			commit(nextCommit, v)
			nextCommit++
			<-sem
		}
	}
}
