package par

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
	if got := Workers(-3); got != 1 {
		t.Errorf("Workers(-3) = %d, want clamp to 1", got)
	}
}

func TestNumShards(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 0}, {-1, 0}, {1, 1}, {ShardSize, 1}, {ShardSize + 1, 2}, {3 * ShardSize, 3},
	} {
		if got := NumShards(tc.n); got != tc.want {
			t.Errorf("NumShards(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		n := 10*ShardSize + 17
		hits := make([]atomic.Int32, n)
		For(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
	For(4, 0, func(int) { t.Error("For with n=0 must not call fn") })
}

func TestOrderedCommitsInShardOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		n := 7*ShardSize + 123
		var committed []int
		total := 0
		Ordered(workers, n,
			func(worker, shard, lo, hi int) int {
				if lo != shard*ShardSize {
					t.Errorf("shard %d: lo = %d", shard, lo)
				}
				return hi - lo
			},
			func(shard int, v int) {
				committed = append(committed, shard)
				total += v
			})
		if total != n {
			t.Errorf("workers=%d: shard sizes sum to %d, want %d", workers, total, n)
		}
		if len(committed) != NumShards(n) {
			t.Fatalf("workers=%d: %d commits, want %d", workers, len(committed), NumShards(n))
		}
		for i, s := range committed {
			if s != i {
				t.Fatalf("workers=%d: commit %d was shard %d, want ascending shard order", workers, i, s)
			}
		}
	}
}

// TestOrderedFloatSumsAreWorkerCountIndependent is the determinism
// contract itself: per-shard float partials merged in shard order must be
// bit-identical for every worker count.
func TestOrderedFloatSumsAreWorkerCountIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 5*ShardSize + 77
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 0.1
	}
	sum := func(workers int) float64 {
		var total float64
		Ordered(workers, n,
			func(_, _, lo, hi int) float64 {
				var partial float64
				for i := lo; i < hi; i++ {
					partial += xs[i]
				}
				return partial
			},
			func(_ int, partial float64) { total += partial })
		return total
	}
	base := sum(1)
	for _, workers := range []int{2, 3, 5, 13} {
		if got := sum(workers); got != base {
			t.Errorf("workers=%d: sum %v != serial %v (must be bit-identical)", workers, got, base)
		}
	}
}

func TestOrderedWorkerIndexIsExclusive(t *testing.T) {
	const workers = 4
	var inUse [workers]atomic.Int32
	Ordered(workers, 40*ShardSize,
		func(worker, _, _, _ int) int {
			if inUse[worker].Add(1) != 1 {
				t.Errorf("worker index %d used concurrently", worker)
			}
			defer inUse[worker].Add(-1)
			return 0
		},
		func(int, int) {})
}
