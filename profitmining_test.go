package profitmining_test

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"profitmining"
)

func TestBuildAndRecommendGrocery(t *testing.T) {
	g := profitmining.NewGrocery(800, 11)
	rec, err := profitmining.Build(g.Dataset, profitmining.Options{
		MinSupport: 0.01,
		Hierarchy:  g.Builder,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Snack basket → Sunchip at some price.
	basket := profitmining.Basket{{Item: g.Items["Beer"], Promo: g.Promos["Beer@9"], Qty: 1}}
	r := rec.Recommend(basket)
	if r.Item != g.Items["Sunchip"] {
		t.Errorf("beer basket → %v, want Sunchip", g.Dataset.Catalog.Item(r.Item).Name)
	}
	if r.Rule == nil {
		t.Fatal("recommendation carries no rule")
	}
	if len(rec.Explain(r)) == 0 {
		t.Error("Explain returned nothing")
	}

	// Bread basket → Egg, at the profitable 4-pack price (intro scenario:
	// 4-pack profit 2.0 vs pack 0.5 at equal frequency).
	bread := profitmining.Basket{{Item: g.Items["Bread"], Promo: g.Promos["Bread"], Qty: 1}}
	r = rec.Recommend(bread)
	if r.Item != g.Items["Egg"] || r.Promo != g.Promos["Egg@4.4"] {
		t.Errorf("bread basket → item %v promo %v, want the Egg 4-pack",
			g.Dataset.Catalog.Item(r.Item).Name, r.Promo)
	}
}

func TestBuildValidatesDataset(t *testing.T) {
	if _, err := profitmining.Build(nil, profitmining.Options{MinSupport: 0.1}); err == nil {
		t.Error("nil dataset must fail")
	}
	g := profitmining.NewGrocery(10, 1)
	// No threshold at all.
	if _, err := profitmining.Build(g.Dataset, profitmining.Options{}); err == nil {
		t.Error("zero options must fail (no threshold)")
	}
	// Corrupt a transaction.
	bad := *g.Dataset
	bad.Transactions = append([]profitmining.Transaction(nil), g.Dataset.Transactions...)
	bad.Transactions[0].Target.Qty = -1
	if _, err := profitmining.Build(&bad, profitmining.Options{MinSupport: 0.1}); err == nil {
		t.Error("invalid dataset must fail validation")
	}
}

func TestOptionsVariants(t *testing.T) {
	g := profitmining.NewGrocery(400, 7)
	base := profitmining.Options{MinSupport: 0.02, Hierarchy: g.Builder}

	moa, err := profitmining.Build(g.Dataset, base)
	if err != nil {
		t.Fatal(err)
	}
	noMoaOpts := base
	noMoaOpts.DisableMOA = true
	noMoa, err := profitmining.Build(g.Dataset, noMoaOpts)
	if err != nil {
		t.Fatal(err)
	}
	// MOA adds price-level generalizations, so it mines at least as many
	// rules pre-pruning.
	if moa.Stats().RulesGenerated < noMoa.Stats().RulesGenerated {
		t.Errorf("MOA generated %d rules, no-MOA %d — expected MOA ≥ no-MOA",
			moa.Stats().RulesGenerated, noMoa.Stats().RulesGenerated)
	}

	unprunedOpts := base
	unprunedOpts.DisablePruning = true
	unpruned, err := profitmining.Build(g.Dataset, unprunedOpts)
	if err != nil {
		t.Fatal(err)
	}
	if unpruned.Stats().RulesFinal < moa.Stats().RulesFinal {
		t.Error("pruning should not increase the rule count")
	}

	interestOpts := base
	interestOpts.MinInterest = 1.5
	interest, err := profitmining.Build(g.Dataset, interestOpts)
	if err != nil {
		t.Fatal(err)
	}
	if interest.Stats().RulesNonDominated > moa.Stats().RulesNonDominated {
		t.Error("R-interest filter should not grow the rule set")
	}

	confOpts := base
	confOpts.MinConfidence = 0.9
	strict, err := profitmining.Build(g.Dataset, confOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range strict.Rules() {
		if !r.IsDefault() && r.Conf() < 0.9 {
			t.Errorf("rule below the confidence threshold survived: conf %.2f", r.Conf())
		}
	}
}

func TestDatasetGenerationFacade(t *testing.T) {
	q := profitmining.QuestConfig{
		NumTransactions: 300,
		NumItems:        30,
		AvgTxnLen:       5,
		AvgPatternLen:   3,
		NumPatterns:     20,
		Seed:            3,
	}
	ds1, err := profitmining.GenerateDatasetI(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds1.Catalog.TargetItems()) != 2 {
		t.Errorf("dataset I targets = %d", len(ds1.Catalog.TargetItems()))
	}
	ds2, err := profitmining.GenerateDatasetII(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds2.Catalog.TargetItems()) != 10 {
		t.Errorf("dataset II targets = %d", len(ds2.Catalog.TargetItems()))
	}
	custom, err := profitmining.GenerateSynthetic(profitmining.SyntheticConfig{
		Quest:   q,
		Targets: []profitmining.TargetSpec{{Name: "only", Cost: 5, Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(custom.Catalog.TargetItems()) != 1 {
		t.Error("custom synthetic targets")
	}
}

func TestEvaluateFacade(t *testing.T) {
	g := profitmining.NewGrocery(600, 5)
	// Train on the first 500, validate the last 100.
	train := &profitmining.Dataset{Catalog: g.Dataset.Catalog, Transactions: g.Dataset.Transactions[:500]}
	validation := g.Dataset.Transactions[500:]

	rec, err := profitmining.Build(train, profitmining.Options{MinSupport: 0.01, Hierarchy: g.Builder})
	if err != nil {
		t.Fatal(err)
	}
	m := profitmining.Evaluate(g.Dataset.Catalog, validation, profitmining.RecommenderFunc(rec),
		profitmining.EvalOptions{MOAHits: true})
	if m.N != 100 {
		t.Fatalf("N = %d", m.N)
	}
	if m.Gain() <= 0 || m.Gain() > 1 {
		t.Errorf("gain = %g, want in (0, 1] under saving MOA", m.Gain())
	}
	if m.HitRate() <= 0.3 {
		t.Errorf("hit rate = %g, suspiciously low for the grocery patterns", m.HitRate())
	}
}

func TestRunSweepFacade(t *testing.T) {
	q := profitmining.QuestConfig{
		NumTransactions: 400,
		NumItems:        25,
		AvgTxnLen:       5,
		AvgPatternLen:   3,
		NumPatterns:     20,
		Seed:            9,
	}
	ds, err := profitmining.GenerateDatasetI(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	points, err := profitmining.RunSweep(ds, profitmining.FlatSpaces(ds.Catalog), profitmining.SweepConfig{
		Variants:    []profitmining.Variant{profitmining.ProfMOA, profitmining.MPI},
		MinSupports: []float64{0.05},
		Folds:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
}

func TestReadBasketsFacade(t *testing.T) {
	ds, err := profitmining.ReadBaskets(strings.NewReader("a b t\nc t\n"), profitmining.BasketOptions{
		Targets: []string{"t"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Transactions) != 2 || len(ds.Catalog.TargetItems()) != 1 {
		t.Errorf("baskets = %d txns, %d targets", len(ds.Transactions), len(ds.Catalog.TargetItems()))
	}
}

func TestModelStreamFacade(t *testing.T) {
	g := profitmining.NewGrocery(200, 3)
	rec, err := profitmining.Build(g.Dataset, profitmining.Options{MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := profitmining.WriteModel(&buf, g.Dataset.Catalog, nil, rec); err != nil {
		t.Fatal(err)
	}
	_, rec2, err := profitmining.ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Stats().RulesFinal != rec.Stats().RulesFinal {
		t.Error("model stream round trip changed the model")
	}
}

func TestNewHierarchyFacade(t *testing.T) {
	cat := profitmining.NewCatalog()
	it := cat.AddItem("A", false)
	cat.AddPromo(it, 1, 0.5, 1)
	tgt := cat.AddItem("T", true)
	pt := cat.AddPromo(tgt, 5, 2, 1)

	hb := profitmining.NewHierarchy(cat)
	hb.AddConcept("Stuff")
	hb.PlaceItem(it, "Stuff")
	ds := &profitmining.Dataset{Catalog: cat, Transactions: []profitmining.Transaction{
		{
			NonTarget: []profitmining.Sale{{Item: it, Promo: cat.Promos(it)[0], Qty: 1}},
			Target:    profitmining.Sale{Item: tgt, Promo: pt, Qty: 1},
		},
	}}
	rec, err := profitmining.Build(ds, profitmining.Options{MinSupportCount: 1, Hierarchy: hb})
	if err != nil {
		t.Fatal(err)
	}
	// The concept appears as a rule body candidate.
	found := false
	for _, r := range rec.Rules() {
		for _, g := range r.Body {
			if rec.Space().Name(g) == "Stuff" {
				found = true
			}
		}
	}
	if !found {
		t.Log("no concept rule survived (acceptable on one transaction)")
	}
}

func TestSaveLoadFacade(t *testing.T) {
	g := profitmining.NewGrocery(50, 2)
	path := filepath.Join(t.TempDir(), "grocery.pmjl")
	if err := profitmining.SaveDataset(path, g.Dataset, nil); err != nil {
		t.Fatal(err)
	}
	ds, _, err := profitmining.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ds.RecordedProfit()-g.Dataset.RecordedProfit()) > 1e-9 {
		t.Error("save/load changed recorded profit")
	}

	var buf bytes.Buffer
	if err := profitmining.WriteDataset(&buf, g.Dataset, nil); err != nil {
		t.Fatal(err)
	}
	ds2, _, err := profitmining.ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds2.Transactions) != 50 {
		t.Error("stream round trip lost transactions")
	}
}

func TestTopKFacade(t *testing.T) {
	g := profitmining.NewGrocery(800, 13)
	rec, err := profitmining.Build(g.Dataset, profitmining.Options{MinSupport: 0.005, Hierarchy: g.Builder})
	if err != nil {
		t.Fatal(err)
	}
	basket := profitmining.Basket{{Item: g.Items["Perfume"], Promo: g.Promos["Perfume"], Qty: 1}}
	top := rec.RecommendTopK(basket, 2)
	if len(top) != 2 {
		t.Fatalf("TopK = %d recommendations", len(top))
	}
	if top[0].Item == top[1].Item {
		t.Error("TopK repeated an item")
	}
	// Perfume buyers buy lipsticks and diamonds: both should show up.
	want := map[profitmining.ItemID]bool{g.Items["Lipstick"]: true, g.Items["Diamond"]: true}
	for _, r := range top {
		if !want[r.Item] {
			t.Errorf("unexpected TopK item %v", g.Dataset.Catalog.Item(r.Item).Name)
		}
	}
}
