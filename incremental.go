package profitmining

import (
	"fmt"

	"profitmining/internal/incremental"
)

// Incremental is a profit-mining model maintained over a sliding window
// of transactions. Where Build starts from scratch, an Incremental
// model absorbs new transactions with Slide — evicting the oldest ones
// once the window is full — at a cost proportional to the slide, not
// the window. The maintained model is byte-identical (as saved by
// WriteModel) to Build over the same window with the same options.
//
// It is not safe for concurrent use; the serving layer's drift
// refresher serializes access.
type Incremental struct {
	space *Space
	maint *incremental.Maintainer
}

// NewIncremental builds the initial model over ds.Transactions, which
// become the sliding window; the window capacity is the initial length.
// The options must include a support threshold (MinSupport or
// MinSupportCount): profit-only pruning cannot be maintained
// incrementally.
func NewIncremental(ds *Dataset, opts Options) (*Incremental, error) {
	if ds == nil {
		return nil, fmt.Errorf("profitmining: nil dataset")
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	space, err := compileSpace(ds.Catalog, opts)
	if err != nil {
		return nil, err
	}
	maint, err := incremental.New(space, ds.Transactions, incremental.Config{
		Mining: opts.miningOptions(),
		Core:   opts.coreConfig(),
	})
	if err != nil {
		return nil, err
	}
	return &Incremental{space: space, maint: maint}, nil
}

// Slide appends incoming transactions to the window, evicting the
// oldest ones once the capacity is exceeded, and returns the refreshed
// recommender.
func (inc *Incremental) Slide(incoming []Transaction) (*Recommender, error) {
	return inc.maint.Slide(incoming)
}

// Recommender returns the model over the current window.
func (inc *Incremental) Recommender() *Recommender { return inc.maint.Recommender() }

// Window returns the current window, oldest first. The slice is owned
// by the model; callers must not modify it.
func (inc *Incremental) Window() []Transaction { return inc.maint.Window() }

// Space returns the compiled generalized-sale space the model operates
// on.
func (inc *Incremental) Space() *Space { return inc.space }
