// Command profitserve serves a profit-mining recommender over HTTP.
//
// Serve a previously saved model:
//
//	profitserve -model grocery.pmm -addr :8080
//
// Follow retrains by watching the model file for changes (poll-based;
// new versions are validated and hot-swapped without dropping traffic):
//
//	profitserve -model grocery.pmm -watch -poll 2s
//
// Shadow-score candidates on 10% of live traffic before promoting:
//
//	profitserve -model grocery.pmm -watch -shadow 0.1
//
// Or train on a dataset file and serve in one step:
//
//	profitserve -data grocery.pmjl -minsup 0.01 -addr :8080
//
// Close the loop with a durable outcome log and drift detection: report
// what customers did with the recommendations, and run a command when
// realized profit drifts away from the model's projections (typically a
// retrain that -watch then hot-swaps in):
//
//	profitserve -model grocery.pmm -watch \
//	    -feedback-dir /var/lib/profitserve/feedback \
//	    -on-drift 'make retrain'
//
// Or answer drift alarms in-process: with -data and -window the model is
// maintained incrementally over a sliding window of the dataset, and a
// drift alarm triggers a windowed delta refresh — the window slides
// -slide transactions forward and the refreshed model is staged through
// the usual validate → shadow → promote path, no retrain process needed:
//
//	profitserve -data grocery.pmjl -minsup 0.01 -window 4000 -slide 250 \
//	    -feedback-dir /var/lib/profitserve/feedback -shadow 0.5
//
// Endpoints: GET /healthz, GET /catalog, GET /rules?limit=N,
// GET /metrics, GET /version, GET /feedback/stats, POST /admin/reload,
// POST /recommend {"basket":[{"item":"Beer","promoIx":0,"qty":1}],"k":2},
// POST /recommend/batch {"baskets":[{"basket":[...],"k":2}, ...]},
// POST /outcome {"requestID":"...","ruleID":"r0123...","modelVersion":1,"bought":true,"qty":2,"paidPrice":3.5}.
//
// -pprof localhost:6060 additionally serves the net/http/pprof profiling
// endpoints on a separate, operator-only listener.
//
// Scale out with the cluster roles. A replica is the ordinary server
// plus two background loops — it ships its sealed feedback-WAL
// segments to the coordinator and pulls the cluster model by content
// hash (it can even start model-less and wait for the first sync):
//
//	profitserve -role replica -join http://coord:9090 \
//	    -feedback-dir /var/lib/profitserve/feedback -addr :8080
//
// The coordinator is the thin fleet front: it health-checks replicas,
// routes /recommend, /recommend/batch and /outcome with hedged
// failover, merges /metrics and /version, aggregates the shipped
// segments into the deterministic cluster-wide /feedback/stats, and
// runs the single cluster-level drift detector — with -data and
// -window a cluster drift alarm triggers one in-process delta refresh
// whose result fans back out to every replica:
//
//	profitserve -role coordinator -addr :9090 \
//	    -replicas http://r1:8080,http://r2:8080,http://r3:8080 \
//	    -data grocery.pmjl -minsup 0.01 -window 4000 -slide 250 \
//	    -spool-dir /var/lib/profitserve/spool
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, in-flight
// requests finish (bounded by -drain), then the process exits.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"profitmining"
	"profitmining/internal/cluster"
	"profitmining/internal/feedback"
	"profitmining/internal/incremental"
	"profitmining/internal/mining"
	"profitmining/internal/registry"
	"profitmining/internal/serve"
)

func main() {
	var (
		modelPath = flag.String("model", "", "saved model file (from profitminer -save)")
		dataPath  = flag.String("data", "", "dataset file to train on (alternative to -model)")
		minsup    = flag.Float64("minsup", 0.001, "minimum support when training from -data")
		window    = flag.Int("window", 0, "with -data: maintain the model over a sliding window of this many transactions and answer drift alarms with an in-process delta refresh (0 = batch build, drift only runs -on-drift)")
		slide     = flag.Int("slide", 256, "transactions each delta refresh slides the window by (with -window)")
		addr      = flag.String("addr", ":8080", "listen address")
		watch     = flag.Bool("watch", false, "poll the -model file and hot-swap new versions")
		poll      = flag.Duration("poll", 2*time.Second, "poll interval for -watch")
		shadow    = flag.Float64("shadow", 0, "fraction of live traffic replayed against a staged candidate before promotion (0 = promote immediately)")
		samples   = flag.Int("shadow-samples", 32, "shadowed requests required before a staged candidate auto-promotes")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); off by default")

		fbDir       = flag.String("feedback-dir", "", "directory for the durable outcome log (empty = in-memory feedback, lost on restart)")
		fbSync      = flag.Int("feedback-sync", 1, "fsync the outcome log every N appends (0 = leave durability to the OS)")
		fbSeg       = flag.Int64("feedback-seg", 64<<20, "outcome-log segment size in bytes before rotation")
		driftLambda = flag.Float64("drift-lambda", 25, "Page-Hinkley drift threshold λ, in profit units")
		driftDelta  = flag.Float64("drift-delta", 0.005, "Page-Hinkley per-observation slack δ")
		driftMin    = flag.Int64("drift-min", 30, "outcomes required since the last model change before drift can trigger")
		onDrift     = flag.String("on-drift", "", "command run (via sh -c) when drift is detected, e.g. a retrain job")

		role     = flag.String("role", "", `cluster role: "" (single node), "replica" (requires -join), or "coordinator" (front the fleet in -replicas)`)
		join     = flag.String("join", "", "coordinator base URL a replica ships feedback to and syncs models from (implies -role replica)")
		nodeID   = flag.String("node-id", "", "replica's stable cluster identity (default: hostname + -addr)")
		replicas = flag.String("replicas", "", "comma-separated replica base URLs the coordinator fronts")
		spoolDir = flag.String("spool-dir", "", "coordinator directory for shipped WAL segments (empty = in-memory spool, lost on restart)")
		sharded  = flag.Bool("sharded", false, "coordinator routes each basket by consistent hash of its item set (for catalogs sharded across replicas)")
	)
	flag.Parse()

	drift := feedback.DriftConfig{Delta: *driftDelta, Lambda: *driftLambda, MinObservations: *driftMin}
	switch *role {
	case "coordinator":
		runCoordinator(coordinatorFlags{
			addr:      *addr,
			replicas:  *replicas,
			spoolDir:  *spoolDir,
			sharded:   *sharded,
			modelPath: *modelPath,
			dataPath:  *dataPath,
			minsup:    *minsup,
			window:    *window,
			slide:     *slide,
			drift:     drift,
			onDrift:   *onDrift,
			drain:     *drain,
		})
		return
	case "replica":
		if *join == "" {
			fail(fmt.Errorf("-role replica requires -join <coordinator URL>"))
		}
	case "":
		if *join != "" {
			*role = "replica"
		}
	default:
		fail(fmt.Errorf("unknown -role %q (want replica or coordinator)", *role))
	}

	// refresher is stored below once the windowed maintenance is wired
	// (it needs the registry, which needs the collector): the OnDrift
	// hook fires from the collector's goroutine, so the late binding
	// goes through an atomic.
	var refresher atomic.Pointer[incremental.Refresher]
	fbCfg := feedback.Config{
		Dir:   *fbDir,
		WAL:   feedback.WALOptions{MaxSegmentBytes: *fbSeg, SyncEvery: *fbSync},
		Drift: drift,
		Logf:  log.Printf,
	}
	if *onDrift != "" || *window > 0 {
		hook := *onDrift
		//lint:allow atomiczone -- not a request-scoped registry snapshot: the refresher pointer is a process-lifetime late binding, re-loaded on every drift episode
		fbCfg.OnDrift = func() {
			if r := refresher.Load(); r != nil {
				r.OnDrift()
			}
			if hook == "" {
				return
			}
			log.Printf("drift detected; running: %s", hook)
			out, err := exec.Command("sh", "-c", hook).CombinedOutput()
			if err != nil {
				log.Printf("on-drift command failed: %v\n%s", err, out)
				return
			}
			log.Printf("on-drift command finished\n%s", out)
		}
	}
	fb, replayed, err := feedback.Open(fbCfg)
	if err != nil {
		fail(err)
	}
	defer fb.Close()
	if *fbDir != "" {
		log.Printf("feedback log %s: replayed %d records (%d segments, %d bytes dropped)",
			*fbDir, replayed.Records, replayed.Segments, replayed.DroppedBytes)
	}

	reg, err := registry.New(registry.Options{
		ShadowFraction:   *shadow,
		ShadowMinSamples: *samples,
		OnPromote:        func(snap *registry.Snapshot) { serve.RegisterSnapshot(fb, snap) },
	})
	if err != nil {
		fail(err)
	}

	var reload serve.Reloader
	switch {
	case *modelPath != "" && *dataPath != "":
		fail(fmt.Errorf("give either -model or -data, not both"))
	case *window > 0 && *dataPath == "":
		fail(fmt.Errorf("-window requires -data (the window slides over the dataset's transactions)"))
	case *modelPath != "":
		watcher, err := registry.NewWatcher(reg, *modelPath, *poll, log.Printf)
		if err != nil {
			fail(err)
		}
		// The initial load goes through the same gate as every later
		// swap; a broken file at startup is fatal, not served around.
		if _, outcome, err := watcher.Check(); err != nil {
			fail(fmt.Errorf("loading %s: %w (%s)", *modelPath, err, outcome))
		}
		reload = watcher.Check
		if *watch {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go watcher.Run(ctx)
			log.Printf("watching %s every %v (shadow fraction %g)", *modelPath, *poll, *shadow)
		}
	case *dataPath != "":
		ds, spec, err := profitmining.LoadDataset(*dataPath)
		if err != nil {
			fail(err)
		}
		opts := profitmining.Options{MinSupport: *minsup}
		if spec != nil {
			if opts.Hierarchy, err = spec.Builder(ds.Catalog); err != nil {
				fail(err)
			}
		}
		if *window > 0 {
			r, err := windowedRefresher(ds, spec, opts, *window, *slide, reg)
			if err != nil {
				fail(err)
			}
			refresher.Store(r)
			log.Printf("windowed maintenance on: drift slides %d transactions per refresh", *slide)
			break
		}
		rec, err := profitmining.Build(ds, opts)
		if err != nil {
			fail(err)
		}
		if _, _, err := reg.Submit(ds.Catalog, rec, "trained from "+*dataPath, ""); err != nil {
			fail(err)
		}
	case *role == "replica":
		// A replica may boot model-less: it answers 503 (with
		// Retry-After) until the first cluster sync delivers a model.
	default:
		fmt.Fprintln(os.Stderr, "profitserve: -model or -data is required")
		flag.Usage()
		os.Exit(2)
	}

	if active := reg.Active(); active != nil {
		log.Printf("serving version %d: %d rules over %d items on %s",
			active.Version, active.Rec.Stats().RulesFinal, active.Cat.NumItems(), *addr)
	} else {
		log.Printf("no model yet; serving 503 on %s until cluster sync delivers one", *addr)
	}

	// Replica role: start the shipping and model-sync loops. They are
	// cancelled after the HTTP drain so the final seal-and-ship pass
	// carries the last outcomes out before the process exits.
	stopReplica := func() {}
	if *role == "replica" {
		node := *nodeID
		if node == "" {
			//lint:allow droppederr -- a hostname failure leaves host empty and the node ID falls back to the listen address
			host, _ := os.Hostname()
			node = host + *addr
		}
		if *fbDir == "" {
			log.Printf("replica without -feedback-dir: outcome shipping disabled (model sync only)")
		}
		rep, err := cluster.NewReplica(cluster.ReplicaConfig{
			NodeID:      node,
			Coordinator: *join,
			Collector:   fb,
			WALDir:      *fbDir,
			Registry:    reg,
			Logf:        log.Printf,
		})
		if err != nil {
			fail(err)
		}
		repCtx, repCancel := context.WithCancel(context.Background())
		repDone := make(chan struct{})
		go func() {
			defer close(repDone)
			rep.Run(repCtx)
		}()
		stopReplica = func() {
			repCancel()
			<-repDone
		}
		log.Printf("replica %s joined coordinator %s", node, *join)
	}

	// The profiling mux listens on its own, operator-chosen address; it
	// is never mounted on the public serving port. The server handle and
	// done channel outlive the if so the drain path below can close the
	// listener and join the goroutine — otherwise the admin port would
	// keep accepting connections after the serving socket has drained.
	var admin *http.Server
	adminDone := make(chan struct{})
	if *pprofAddr != "" {
		admin = &http.Server{
			Addr:              *pprofAddr,
			Handler:           serve.AdminHandler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			defer close(adminDone)
			log.Printf("pprof admin mux on %s", *pprofAddr)
			if err := admin.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof admin mux: %v", err)
			}
		}()
	} else {
		close(adminDone)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewRegistry(reg, reload, fb).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain: Shutdown stops the
	// listener and waits for in-flight requests up to the -drain budget.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
		stop()
		log.Printf("shutting down: draining in-flight requests (up to %v)", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("drain incomplete: %v", err)
			srv.Close()
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
		stopReplica()
		if admin != nil {
			admin.Close()
		}
		<-adminDone
		log.Printf("drained; bye")
	}
}

// coordinatorFlags carries the flag subset the coordinator role uses.
type coordinatorFlags struct {
	addr      string
	replicas  string
	spoolDir  string
	sharded   bool
	modelPath string
	dataPath  string
	minsup    float64
	window    int
	slide     int
	drift     feedback.DriftConfig
	onDrift   string
	drain     time.Duration
}

// runCoordinator is the coordinator role's main: no local serve stack,
// just the cluster front plus (optionally) the model source it
// distributes and the in-process delta refresh answering cluster drift.
func runCoordinator(f coordinatorFlags) {
	var fleet []string
	for _, r := range strings.Split(f.replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			fleet = append(fleet, r)
		}
	}
	if len(fleet) == 0 {
		log.Printf("coordinator starting with an empty fleet; it aggregates segments but cannot route until -replicas are set")
	}

	// Late-bound refresher, as in the single-node path: the cluster
	// OnDrift hook fires from the coordinator's goroutine before the
	// refresher exists.
	var refresher atomic.Pointer[incremental.Refresher]
	cfg := cluster.CoordinatorConfig{
		Replicas: fleet,
		Sharded:  f.sharded,
		SpoolDir: f.spoolDir,
		Drift:    f.drift,
		Logf:     log.Printf,
	}
	if f.onDrift != "" || f.window > 0 {
		hook := f.onDrift
		//lint:allow atomiczone -- process-lifetime late binding of the refresher, not a request-scoped snapshot
		cfg.OnDrift = func() {
			if r := refresher.Load(); r != nil {
				r.OnDrift()
			}
			if hook == "" {
				return
			}
			log.Printf("cluster drift detected; running: %s", hook)
			out, err := exec.Command("sh", "-c", hook).CombinedOutput()
			if err != nil {
				log.Printf("on-drift command failed: %v\n%s", err, out)
				return
			}
			log.Printf("on-drift command finished\n%s", out)
		}
	}
	coord, err := cluster.NewCoordinator(cfg)
	if err != nil {
		fail(err)
	}

	switch {
	case f.modelPath != "" && f.dataPath != "":
		fail(fmt.Errorf("give either -model or -data, not both"))
	case f.window > 0 && f.dataPath == "":
		fail(fmt.Errorf("-window requires -data (the window slides over the dataset's transactions)"))
	case f.modelPath != "":
		// Validate before distributing: a broken file should fail
		// startup, not poison the whole fleet.
		if err := profitmining.VerifyModel(f.modelPath); err != nil {
			fail(fmt.Errorf("verifying %s: %w", f.modelPath, err))
		}
		data, err := os.ReadFile(f.modelPath)
		if err != nil {
			fail(err)
		}
		coord.SetModel(data)
	case f.dataPath != "":
		ds, spec, err := profitmining.LoadDataset(f.dataPath)
		if err != nil {
			fail(err)
		}
		opts := profitmining.Options{MinSupport: f.minsup}
		if spec != nil {
			if opts.Hierarchy, err = spec.Builder(ds.Catalog); err != nil {
				fail(err)
			}
		}
		// The coordinator's registry exists to gate and distribute, not
		// to serve: there is no local traffic to shadow, so promotion is
		// immediate and OnPromote fans the model out to the fleet.
		reg, err := registry.New(registry.Options{
			OnPromote: func(snap *registry.Snapshot) {
				var buf bytes.Buffer
				if err := profitmining.WriteModel(&buf, snap.Cat, spec, snap.Rec); err != nil {
					log.Printf("encoding promoted model v%d: %v", snap.Version, err)
					return
				}
				coord.SetModel(buf.Bytes())
			},
		})
		if err != nil {
			fail(err)
		}
		if f.window > 0 {
			r, err := windowedRefresher(ds, spec, opts, f.window, f.slide, reg)
			if err != nil {
				fail(err)
			}
			refresher.Store(r)
			log.Printf("windowed maintenance on: cluster drift slides %d transactions per refresh", f.slide)
		} else {
			rec, err := profitmining.Build(ds, opts)
			if err != nil {
				fail(err)
			}
			if _, _, err := reg.Submit(ds.Catalog, rec, "trained from "+f.dataPath, ""); err != nil {
				fail(err)
			}
		}
	default:
		log.Printf("no -model/-data: distributing nothing until one is provided; replicas keep their own models")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go coord.Run(ctx)

	srv := &http.Server{
		Addr:              f.addr,
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	log.Printf("coordinator on %s fronting %d replicas (spool %q)", f.addr, len(fleet), f.spoolDir)

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
		stop()
		log.Printf("shutting down: draining in-flight requests (up to %v)", f.drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), f.drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("drain incomplete: %v", err)
			srv.Close()
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
		log.Printf("drained; bye")
	}
}

// windowedRefresher builds the initial model over the first window
// transactions of the dataset, submits it to the registry, and returns a
// refresher that answers drift alarms by sliding the window through the
// remaining transactions (wrapping around when the dataset is
// exhausted). Each refreshed candidate flows through the registry's
// validate → shadow → promote lifecycle like any other submission.
func windowedRefresher(ds *profitmining.Dataset, spec *profitmining.HierarchySpec, opts profitmining.Options, window, slide int, reg *registry.Registry) (*incremental.Refresher, error) {
	if window > len(ds.Transactions) {
		window = len(ds.Transactions)
	}
	space, err := profitmining.CompileSpace(ds.Catalog, opts.Hierarchy, true)
	if err != nil {
		return nil, err
	}
	// The maintainer takes the stage configs directly; with only a
	// support threshold set, these are exactly what profitmining.Build
	// derives from opts, so the maintained model stays byte-identical to
	// a batch build over the same window.
	maint, err := incremental.New(space, ds.Transactions[:window], incremental.Config{
		Mining: mining.Options{MinSupport: opts.MinSupport},
	})
	if err != nil {
		return nil, err
	}
	refresher, err := incremental.NewRefresher(incremental.RefreshConfig{
		Maintainer: maint,
		Catalog:    ds.Catalog,
		Spec:       spec,
		Source:     ds.Transactions,
		Start:      window % len(ds.Transactions),
		Slide:      slide,
		Registry:   reg,
		Logf:       log.Printf,
	})
	if err != nil {
		return nil, err
	}
	if _, _, err := refresher.SubmitCurrent(fmt.Sprintf("initial window of %d", window)); err != nil {
		return nil, err
	}
	return refresher, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "profitserve: %v\n", err)
	os.Exit(1)
}
