// Command profitserve serves a profit-mining recommender over HTTP.
//
// Serve a previously saved model:
//
//	profitserve -model grocery.pmm -addr :8080
//
// Follow retrains by watching the model file for changes (poll-based;
// new versions are validated and hot-swapped without dropping traffic):
//
//	profitserve -model grocery.pmm -watch -poll 2s
//
// Shadow-score candidates on 10% of live traffic before promoting:
//
//	profitserve -model grocery.pmm -watch -shadow 0.1
//
// Or train on a dataset file and serve in one step:
//
//	profitserve -data grocery.pmjl -minsup 0.01 -addr :8080
//
// Close the loop with a durable outcome log and drift detection: report
// what customers did with the recommendations, and run a command when
// realized profit drifts away from the model's projections (typically a
// retrain that -watch then hot-swaps in):
//
//	profitserve -model grocery.pmm -watch \
//	    -feedback-dir /var/lib/profitserve/feedback \
//	    -on-drift 'make retrain'
//
// Or answer drift alarms in-process: with -data and -window the model is
// maintained incrementally over a sliding window of the dataset, and a
// drift alarm triggers a windowed delta refresh — the window slides
// -slide transactions forward and the refreshed model is staged through
// the usual validate → shadow → promote path, no retrain process needed:
//
//	profitserve -data grocery.pmjl -minsup 0.01 -window 4000 -slide 250 \
//	    -feedback-dir /var/lib/profitserve/feedback -shadow 0.5
//
// Endpoints: GET /healthz, GET /catalog, GET /rules?limit=N,
// GET /metrics, GET /version, GET /feedback/stats, POST /admin/reload,
// POST /recommend {"basket":[{"item":"Beer","promoIx":0,"qty":1}],"k":2},
// POST /recommend/batch {"baskets":[{"basket":[...],"k":2}, ...]},
// POST /outcome {"requestID":"...","ruleID":"r0123...","modelVersion":1,"bought":true,"qty":2,"paidPrice":3.5}.
//
// -pprof localhost:6060 additionally serves the net/http/pprof profiling
// endpoints on a separate, operator-only listener.
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, in-flight
// requests finish (bounded by -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"profitmining"
	"profitmining/internal/feedback"
	"profitmining/internal/incremental"
	"profitmining/internal/mining"
	"profitmining/internal/registry"
	"profitmining/internal/serve"
)

func main() {
	var (
		modelPath = flag.String("model", "", "saved model file (from profitminer -save)")
		dataPath  = flag.String("data", "", "dataset file to train on (alternative to -model)")
		minsup    = flag.Float64("minsup", 0.001, "minimum support when training from -data")
		window    = flag.Int("window", 0, "with -data: maintain the model over a sliding window of this many transactions and answer drift alarms with an in-process delta refresh (0 = batch build, drift only runs -on-drift)")
		slide     = flag.Int("slide", 256, "transactions each delta refresh slides the window by (with -window)")
		addr      = flag.String("addr", ":8080", "listen address")
		watch     = flag.Bool("watch", false, "poll the -model file and hot-swap new versions")
		poll      = flag.Duration("poll", 2*time.Second, "poll interval for -watch")
		shadow    = flag.Float64("shadow", 0, "fraction of live traffic replayed against a staged candidate before promotion (0 = promote immediately)")
		samples   = flag.Int("shadow-samples", 32, "shadowed requests required before a staged candidate auto-promotes")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); off by default")

		fbDir       = flag.String("feedback-dir", "", "directory for the durable outcome log (empty = in-memory feedback, lost on restart)")
		fbSync      = flag.Int("feedback-sync", 1, "fsync the outcome log every N appends (0 = leave durability to the OS)")
		fbSeg       = flag.Int64("feedback-seg", 64<<20, "outcome-log segment size in bytes before rotation")
		driftLambda = flag.Float64("drift-lambda", 25, "Page-Hinkley drift threshold λ, in profit units")
		driftDelta  = flag.Float64("drift-delta", 0.005, "Page-Hinkley per-observation slack δ")
		driftMin    = flag.Int64("drift-min", 30, "outcomes required since the last model change before drift can trigger")
		onDrift     = flag.String("on-drift", "", "command run (via sh -c) when drift is detected, e.g. a retrain job")
	)
	flag.Parse()

	// refresher is stored below once the windowed maintenance is wired
	// (it needs the registry, which needs the collector): the OnDrift
	// hook fires from the collector's goroutine, so the late binding
	// goes through an atomic.
	var refresher atomic.Pointer[incremental.Refresher]
	fbCfg := feedback.Config{
		Dir:   *fbDir,
		WAL:   feedback.WALOptions{MaxSegmentBytes: *fbSeg, SyncEvery: *fbSync},
		Drift: feedback.DriftConfig{Delta: *driftDelta, Lambda: *driftLambda, MinObservations: *driftMin},
		Logf:  log.Printf,
	}
	if *onDrift != "" || *window > 0 {
		hook := *onDrift
		//lint:allow atomiczone -- not a request-scoped registry snapshot: the refresher pointer is a process-lifetime late binding, re-loaded on every drift episode
		fbCfg.OnDrift = func() {
			if r := refresher.Load(); r != nil {
				r.OnDrift()
			}
			if hook == "" {
				return
			}
			log.Printf("drift detected; running: %s", hook)
			out, err := exec.Command("sh", "-c", hook).CombinedOutput()
			if err != nil {
				log.Printf("on-drift command failed: %v\n%s", err, out)
				return
			}
			log.Printf("on-drift command finished\n%s", out)
		}
	}
	fb, replayed, err := feedback.Open(fbCfg)
	if err != nil {
		fail(err)
	}
	defer fb.Close()
	if *fbDir != "" {
		log.Printf("feedback log %s: replayed %d records (%d segments, %d bytes dropped)",
			*fbDir, replayed.Records, replayed.Segments, replayed.DroppedBytes)
	}

	reg, err := registry.New(registry.Options{
		ShadowFraction:   *shadow,
		ShadowMinSamples: *samples,
		OnPromote:        func(snap *registry.Snapshot) { serve.RegisterSnapshot(fb, snap) },
	})
	if err != nil {
		fail(err)
	}

	var reload serve.Reloader
	switch {
	case *modelPath != "" && *dataPath != "":
		fail(fmt.Errorf("give either -model or -data, not both"))
	case *window > 0 && *dataPath == "":
		fail(fmt.Errorf("-window requires -data (the window slides over the dataset's transactions)"))
	case *modelPath != "":
		watcher, err := registry.NewWatcher(reg, *modelPath, *poll, log.Printf)
		if err != nil {
			fail(err)
		}
		// The initial load goes through the same gate as every later
		// swap; a broken file at startup is fatal, not served around.
		if _, outcome, err := watcher.Check(); err != nil {
			fail(fmt.Errorf("loading %s: %w (%s)", *modelPath, err, outcome))
		}
		reload = watcher.Check
		if *watch {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go watcher.Run(ctx)
			log.Printf("watching %s every %v (shadow fraction %g)", *modelPath, *poll, *shadow)
		}
	case *dataPath != "":
		ds, spec, err := profitmining.LoadDataset(*dataPath)
		if err != nil {
			fail(err)
		}
		opts := profitmining.Options{MinSupport: *minsup}
		if spec != nil {
			if opts.Hierarchy, err = spec.Builder(ds.Catalog); err != nil {
				fail(err)
			}
		}
		if *window > 0 {
			r, err := windowedRefresher(ds, spec, opts, *window, *slide, reg)
			if err != nil {
				fail(err)
			}
			refresher.Store(r)
			log.Printf("windowed maintenance on: drift slides %d transactions per refresh", *slide)
			break
		}
		rec, err := profitmining.Build(ds, opts)
		if err != nil {
			fail(err)
		}
		if _, _, err := reg.Submit(ds.Catalog, rec, "trained from "+*dataPath, ""); err != nil {
			fail(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "profitserve: -model or -data is required")
		flag.Usage()
		os.Exit(2)
	}

	active := reg.Active()
	log.Printf("serving version %d: %d rules over %d items on %s",
		active.Version, active.Rec.Stats().RulesFinal, active.Cat.NumItems(), *addr)

	// The profiling mux listens on its own, operator-chosen address; it
	// is never mounted on the public serving port. The server handle and
	// done channel outlive the if so the drain path below can close the
	// listener and join the goroutine — otherwise the admin port would
	// keep accepting connections after the serving socket has drained.
	var admin *http.Server
	adminDone := make(chan struct{})
	if *pprofAddr != "" {
		admin = &http.Server{
			Addr:              *pprofAddr,
			Handler:           serve.AdminHandler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			defer close(adminDone)
			log.Printf("pprof admin mux on %s", *pprofAddr)
			if err := admin.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof admin mux: %v", err)
			}
		}()
	} else {
		close(adminDone)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewRegistry(reg, reload, fb).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain: Shutdown stops the
	// listener and waits for in-flight requests up to the -drain budget.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
		stop()
		log.Printf("shutting down: draining in-flight requests (up to %v)", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("drain incomplete: %v", err)
			srv.Close()
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
		if admin != nil {
			admin.Close()
		}
		<-adminDone
		log.Printf("drained; bye")
	}
}

// windowedRefresher builds the initial model over the first window
// transactions of the dataset, submits it to the registry, and returns a
// refresher that answers drift alarms by sliding the window through the
// remaining transactions (wrapping around when the dataset is
// exhausted). Each refreshed candidate flows through the registry's
// validate → shadow → promote lifecycle like any other submission.
func windowedRefresher(ds *profitmining.Dataset, spec *profitmining.HierarchySpec, opts profitmining.Options, window, slide int, reg *registry.Registry) (*incremental.Refresher, error) {
	if window > len(ds.Transactions) {
		window = len(ds.Transactions)
	}
	space, err := profitmining.CompileSpace(ds.Catalog, opts.Hierarchy, true)
	if err != nil {
		return nil, err
	}
	// The maintainer takes the stage configs directly; with only a
	// support threshold set, these are exactly what profitmining.Build
	// derives from opts, so the maintained model stays byte-identical to
	// a batch build over the same window.
	maint, err := incremental.New(space, ds.Transactions[:window], incremental.Config{
		Mining: mining.Options{MinSupport: opts.MinSupport},
	})
	if err != nil {
		return nil, err
	}
	refresher, err := incremental.NewRefresher(incremental.RefreshConfig{
		Maintainer: maint,
		Catalog:    ds.Catalog,
		Spec:       spec,
		Source:     ds.Transactions,
		Start:      window % len(ds.Transactions),
		Slide:      slide,
		Registry:   reg,
		Logf:       log.Printf,
	})
	if err != nil {
		return nil, err
	}
	if _, _, err := refresher.SubmitCurrent(fmt.Sprintf("initial window of %d", window)); err != nil {
		return nil, err
	}
	return refresher, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "profitserve: %v\n", err)
	os.Exit(1)
}
