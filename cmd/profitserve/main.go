// Command profitserve serves a profit-mining recommender over HTTP.
//
// Serve a previously saved model:
//
//	profitserve -model grocery.pmm -addr :8080
//
// Or train on a dataset file and serve in one step:
//
//	profitserve -data grocery.pmjl -minsup 0.01 -addr :8080
//
// Endpoints: GET /healthz, GET /catalog, GET /rules?limit=N,
// POST /recommend {"basket":[{"item":"Beer","promoIx":0,"qty":1}],"k":2}.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"profitmining"
	"profitmining/internal/serve"
)

func main() {
	var (
		modelPath = flag.String("model", "", "saved model file (from profitminer -save)")
		dataPath  = flag.String("data", "", "dataset file to train on (alternative to -model)")
		minsup    = flag.Float64("minsup", 0.001, "minimum support when training from -data")
		addr      = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()

	var (
		cat *profitmining.Catalog
		rec *profitmining.Recommender
		err error
	)
	switch {
	case *modelPath != "" && *dataPath != "":
		fail(fmt.Errorf("give either -model or -data, not both"))
	case *modelPath != "":
		cat, rec, err = profitmining.LoadModel(*modelPath)
		if err != nil {
			fail(err)
		}
	case *dataPath != "":
		ds, spec, err := profitmining.LoadDataset(*dataPath)
		if err != nil {
			fail(err)
		}
		opts := profitmining.Options{MinSupport: *minsup}
		if spec != nil {
			if opts.Hierarchy, err = spec.Builder(ds.Catalog); err != nil {
				fail(err)
			}
		}
		if rec, err = profitmining.Build(ds, opts); err != nil {
			fail(err)
		}
		cat = ds.Catalog
	default:
		fmt.Fprintln(os.Stderr, "profitserve: -model or -data is required")
		flag.Usage()
		os.Exit(2)
	}

	log.Printf("serving %d rules over %d items on %s", rec.Stats().RulesFinal, cat.NumItems(), *addr)
	srv := serve.New(cat, rec)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "profitserve: %v\n", err)
	os.Exit(1)
}
