// Command profitminer builds a profit-mining recommender from a dataset
// file and reports the model: construction statistics, the final rules in
// MPF rank order, and sample recommendations with explanations.
//
//	profitminer -in dataset1.pmjl -minsup 0.001
//	profitminer -in grocery.pmjl -minsup 0.01 -show 25 -demo 3
package main

import (
	"flag"
	"fmt"
	"os"

	"profitmining"
)

func main() {
	var (
		in      = flag.String("in", "", "input dataset file (required)")
		minsup  = flag.Float64("minsup", 0.001, "minimum relative support")
		minprof = flag.Float64("minprofit", 0, "minimum rule profit (0 = off)")
		maxLen  = flag.Int("maxlen", 3, "maximum rule body length")
		cf      = flag.Float64("cf", 0.25, "pessimistic confidence level")
		noMOA   = flag.Bool("nomoa", false, "disable mining on availability")
		binary  = flag.Bool("binary", false, "confidence-driven building (CONF variant)")
		noPrune = flag.Bool("noprune", false, "skip cut-optimal pruning")
		buying  = flag.Bool("buying", false, "buying MOA (spending-preserving) instead of saving MOA")
		show    = flag.Int("show", 20, "number of top rules to print")
		demo    = flag.Int("demo", 0, "recommend-and-explain for the first N transactions")
		save    = flag.String("save", "", "write the built model to this file (servable by profitserve)")
		report  = flag.Bool("report", false, "print the model summary report")
		par     = flag.Int("parallel", 0, "build worker count (0 = one per CPU, 1 = serial; identical output either way)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "profitminer: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	ds, spec, err := profitmining.LoadDataset(*in)
	if err != nil {
		fail(err)
	}
	var hb *profitmining.HierarchyBuilder
	if spec != nil {
		if hb, err = spec.Builder(ds.Catalog); err != nil {
			fail(err)
		}
	}
	opts := profitmining.Options{
		MinSupport:     *minsup,
		MinRuleProfit:  *minprof,
		MaxBodyLen:     *maxLen,
		CF:             *cf,
		DisableMOA:     *noMOA,
		BinaryProfit:   *binary,
		DisablePruning: *noPrune,
		Hierarchy:      hb,
		Parallelism:    *par,
	}
	if *buying {
		opts.Quantity = profitmining.BuyingMOA{}
	}

	rec, err := profitmining.Build(ds, opts)
	if err != nil {
		fail(err)
	}

	st := rec.Stats()
	fmt.Printf("dataset: %d transactions, %d items (%d targets), recorded profit %.2f\n",
		len(ds.Transactions), ds.Catalog.NumItems(), len(ds.Catalog.TargetItems()), ds.RecordedProfit())
	fmt.Printf("model:   %d rules generated → %d after domination → %d after pruning (tree depth %d)\n",
		st.RulesGenerated, st.RulesNonDominated, st.RulesFinal, st.TreeDepth)
	fmt.Printf("         projected profit on covered customers: %.2f\n\n", st.ProjectedProfit)

	if *report {
		fmt.Println(rec.Report())
	}

	rules := rec.Rules()
	n := *show
	if n > len(rules) {
		n = len(rules)
	}
	fmt.Printf("top %d rules (MPF rank order):\n", n)
	for i := 0; i < n; i++ {
		fmt.Printf("%4d. %s\n", i+1, rules[i].String(rec.Space()))
	}

	if *demo > 0 {
		fmt.Printf("\nsample recommendations:\n")
		for i := 0; i < *demo && i < len(ds.Transactions); i++ {
			r := rec.Recommend(ds.Transactions[i].NonTarget)
			fmt.Printf("-- transaction %d --\n", i)
			for _, line := range rec.Explain(r) {
				fmt.Println(line)
			}
		}
	}

	if *save != "" {
		if err := profitmining.SaveModel(*save, ds.Catalog, spec, rec); err != nil {
			fail(err)
		}
		fmt.Printf("\nmodel saved to %s\n", *save)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "profitminer: %v\n", err)
	os.Exit(1)
}
