// Command profitminer builds a profit-mining recommender from a dataset
// file and reports the model: construction statistics, the final rules in
// MPF rank order, and sample recommendations with explanations.
//
//	profitminer -in dataset1.pmjl -minsup 0.001
//	profitminer -in grocery.pmjl -minsup 0.01 -show 25 -demo 3
//
// With -window N the model is maintained incrementally: it is built
// over the first N transactions and then slid through the rest of the
// dataset -slide transactions at a time, ending on the model over the
// last N — byte-identical to a batch build over that window, at a
// fraction of the cost.
//
//	profitminer -in dataset1.pmjl -minsup 0.002 -window 5000 -slide 250
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"profitmining"
)

func main() {
	var (
		in      = flag.String("in", "", "input dataset file (required)")
		minsup  = flag.Float64("minsup", 0.001, "minimum relative support")
		minprof = flag.Float64("minprofit", 0, "minimum rule profit (0 = off)")
		maxLen  = flag.Int("maxlen", 3, "maximum rule body length")
		cf      = flag.Float64("cf", 0.25, "pessimistic confidence level")
		noMOA   = flag.Bool("nomoa", false, "disable mining on availability")
		binary  = flag.Bool("binary", false, "confidence-driven building (CONF variant)")
		noPrune = flag.Bool("noprune", false, "skip cut-optimal pruning")
		buying  = flag.Bool("buying", false, "buying MOA (spending-preserving) instead of saving MOA")
		show    = flag.Int("show", 20, "number of top rules to print")
		demo    = flag.Int("demo", 0, "recommend-and-explain for the first N transactions")
		save    = flag.String("save", "", "write the built model to this file (servable by profitserve)")
		seal    = flag.String("seal", "", "write the built model as a sealed zero-copy image to this file (mmap-served by profitserve)")
		report  = flag.Bool("report", false, "print the model summary report")
		par     = flag.Int("parallel", 0, "build worker count (0 = one per CPU, 1 = serial; identical output either way)")
		window  = flag.Int("window", 0, "maintain the model over a sliding window of this many transactions (0 = batch build over the whole dataset)")
		slide   = flag.Int("slide", 256, "transactions per window slide (with -window)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "profitminer: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	ds, spec, err := profitmining.LoadDataset(*in)
	if err != nil {
		fail(err)
	}
	var hb *profitmining.HierarchyBuilder
	if spec != nil {
		if hb, err = spec.Builder(ds.Catalog); err != nil {
			fail(err)
		}
	}
	opts := profitmining.Options{
		MinSupport:     *minsup,
		MinRuleProfit:  *minprof,
		MaxBodyLen:     *maxLen,
		CF:             *cf,
		DisableMOA:     *noMOA,
		BinaryProfit:   *binary,
		DisablePruning: *noPrune,
		Hierarchy:      hb,
		Parallelism:    *par,
	}
	if *buying {
		opts.Quantity = profitmining.BuyingMOA{}
	}

	var rec *profitmining.Recommender
	if *window > 0 {
		rec, err = mineWindowed(ds, opts, *window, *slide)
	} else {
		rec, err = profitmining.Build(ds, opts)
	}
	if err != nil {
		fail(err)
	}

	st := rec.Stats()
	fmt.Printf("dataset: %d transactions, %d items (%d targets), recorded profit %.2f\n",
		len(ds.Transactions), ds.Catalog.NumItems(), len(ds.Catalog.TargetItems()), ds.RecordedProfit())
	fmt.Printf("model:   %d rules generated → %d after domination → %d after pruning (tree depth %d)\n",
		st.RulesGenerated, st.RulesNonDominated, st.RulesFinal, st.TreeDepth)
	fmt.Printf("         projected profit on covered customers: %.2f\n\n", st.ProjectedProfit)

	if *report {
		fmt.Println(rec.Report())
	}

	rules := rec.Rules()
	n := *show
	if n > len(rules) {
		n = len(rules)
	}
	fmt.Printf("top %d rules (MPF rank order):\n", n)
	for i := 0; i < n; i++ {
		fmt.Printf("%4d. %s\n", i+1, rules[i].String(rec.Space()))
	}

	if *demo > 0 {
		fmt.Printf("\nsample recommendations:\n")
		for i := 0; i < *demo && i < len(ds.Transactions); i++ {
			r := rec.Recommend(ds.Transactions[i].NonTarget)
			fmt.Printf("-- transaction %d --\n", i)
			for _, line := range rec.Explain(r) {
				fmt.Println(line)
			}
		}
	}

	if *save != "" {
		if err := profitmining.SaveModel(*save, ds.Catalog, spec, rec); err != nil {
			fail(err)
		}
		fmt.Printf("\nmodel saved to %s\n", *save)
	}
	if *seal != "" {
		if err := profitmining.SealModel(*seal, ds.Catalog, rec); err != nil {
			fail(err)
		}
		fmt.Printf("\nsealed model written to %s\n", *seal)
	}
}

// mineWindowed builds the initial model over the first window
// transactions and slides it through the rest of the dataset, printing
// one line per slide. The returned model covers the last window
// transactions.
func mineWindowed(ds *profitmining.Dataset, opts profitmining.Options, window, slide int) (*profitmining.Recommender, error) {
	if slide < 1 {
		return nil, fmt.Errorf("-slide must be at least 1")
	}
	if window > len(ds.Transactions) {
		window = len(ds.Transactions)
	}
	init := &profitmining.Dataset{Catalog: ds.Catalog, Transactions: ds.Transactions[:window]}
	start := time.Now()
	inc, err := profitmining.NewIncremental(init, opts)
	if err != nil {
		return nil, err
	}
	fmt.Printf("window:  initial model over %d transactions (%.2fs)\n", window, time.Since(start).Seconds())
	for pos := window; pos < len(ds.Transactions); pos += slide {
		end := pos + slide
		if end > len(ds.Transactions) {
			end = len(ds.Transactions)
		}
		start = time.Now()
		rec, err := inc.Slide(ds.Transactions[pos:end])
		if err != nil {
			return nil, fmt.Errorf("slide @%d: %w", pos, err)
		}
		st := rec.Stats()
		fmt.Printf("slide @%d: +%d transactions, %d rules, projected %.2f (%.2fs)\n",
			pos, end-pos, st.RulesFinal, st.ProjectedProfit, time.Since(start).Seconds())
	}
	fmt.Println()
	return inc.Recommender(), nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "profitminer: %v\n", err)
	os.Exit(1)
}
