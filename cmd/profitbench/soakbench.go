package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"profitmining"
	"profitmining/internal/cluster"
	"profitmining/internal/datagen"
	"profitmining/internal/feedback"
	"profitmining/internal/incremental"
	"profitmining/internal/mining"
	"profitmining/internal/quest"
	"profitmining/internal/registry"
	"profitmining/internal/serve"
	"profitmining/internal/simload"
)

// soakParams bundles the -soakbench knobs.
type soakParams struct {
	txns, items   int
	minsup        float64
	window, slide int
	users         int
	seed          int64
	virtSecs      float64
	rate          float64 // base session arrivals per virtual second
	qps           float64 // open-loop wall-clock target rate
	wallSecs      float64 // open-loop wall-clock duration
	maxP99Ms      float64 // /recommend p99 budget, both topologies
	checkEvery    int     // cluster WAL-ship cadence, in acked outcomes
	out           string
	url           string // external target ("" = in-process topologies)
}

// soakDrift is the Page-Hinkley tuning the soak stacks run with: tight
// enough that the mid-run behavior shock trips the alarm within a few
// hundred outcomes, loose enough that calibrated pre-shock traffic
// doesn't. The same values drive the smoke script's external server.
var soakDrift = feedback.DriftConfig{Delta: 0.002, Lambda: 8, MinObservations: 50}

// soakTopology reports one topology's virtual-clock soak (two identical
// runs folded together; Deterministic is the byte-identity verdict).
type soakTopology struct {
	Sessions        int64   `json:"sessions"`
	Steps           int64   `json:"steps"`
	Recommends      int64   `json:"recommends"`
	NoRec           int64   `json:"noRec"`
	Outcomes        int64   `json:"outcomes"`
	Conversions     int64   `json:"conversions"`
	DriftAlarms     int64   `json:"driftAlarms"`
	Promotions      int     `json:"promotions"` // model promotions beyond the initial submit
	DroppedOutcomes int64   `json:"droppedOutcomes"`
	Aggregated      int64   `json:"aggregated,omitempty"` // cluster: outcomes folded into the coordinator spool
	RecommendP99Ms  float64 `json:"recommendP99Ms"`       // server-side, from /metrics
	StatsSHA256     string  `json:"statsSHA256"`
	Deterministic   bool    `json:"deterministic"`
}

// soakOpenLoop reports the wall-clock open-loop phase (client-side
// latency; informational except for the dropped ledger).
type soakOpenLoop struct {
	TargetQPS      float64 `json:"targetQPS"`
	AchievedQPS    float64 `json:"achievedQPS"`
	Seconds        float64 `json:"seconds"`
	Requests       int64   `json:"requests"`
	Outcomes       int64   `json:"outcomes"`
	Conversions    int64   `json:"conversions"`
	LateDispatches int64   `json:"lateDispatches"`
	Dropped        int64   `json:"dropped"`
	RecommendP50Ms float64 `json:"recommendP50Ms"`
	RecommendP99Ms float64 `json:"recommendP99Ms"`
	OutcomeP99Ms   float64 `json:"outcomeP99Ms"`
}

// soakReport is the schema of the -soakbench JSON artifact
// (BENCH_soak.json) consumed by CI.
type soakReport struct {
	Dataset        string  `json:"dataset"`
	Txns           int     `json:"txns"`
	Items          int     `json:"items"`
	MinSupport     float64 `json:"minSupport"`
	Window         int     `json:"window"`
	Slide          int     `json:"slide"`
	Users          int     `json:"users"`
	Seed           int64   `json:"seed"`
	VirtualSeconds float64 `json:"virtualSeconds"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	MaxP99Ms       float64 `json:"maxP99Ms"`
	ExternalURL    string  `json:"externalURL,omitempty"`

	Single   *soakTopology `json:"single,omitempty"`
	Cluster  *soakTopology `json:"cluster,omitempty"`
	OpenLoop *soakOpenLoop `json:"openLoop,omitempty"`

	GatesPassed bool `json:"gatesPassed"`
}

// runSoakBench drives the closed-loop soak: two identical virtual-clock
// runs per topology (single node and 3-replica coordinator fleet) whose
// final /feedback/stats must match byte for byte, plus one wall-clock
// open-loop run for latency numbers. Writes BENCH_soak.json and exits
// non-zero if any gate fails.
func runSoakBench(p soakParams) {
	ds, truth := genSoakDataset(p.txns, p.items, p.seed)
	rep := soakReport{
		Dataset:        "I",
		Txns:           p.txns,
		Items:          p.items,
		MinSupport:     p.minsup,
		Window:         p.window,
		Slide:          p.slide,
		Users:          p.users,
		Seed:           p.seed,
		VirtualSeconds: p.virtSecs,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		MaxP99Ms:       p.maxP99Ms,
		ExternalURL:    p.url,
	}

	if p.url != "" {
		rep.Single = runSoakExternal(ds, truth, p)
		rep.GatesPassed = rep.Single.DroppedOutcomes == 0 &&
			rep.Single.Outcomes > 0 &&
			rep.Single.DriftAlarms >= 1 &&
			rep.Single.Promotions >= 1
		writeSoakReport(rep, p)
		return
	}

	fmt.Printf("soakbench: dataset I |T|=%d |I|=%d minsup %g, window %d/%d, %d users, %gs virtual\n",
		p.txns, p.items, p.minsup, p.window, p.slide, p.users, p.virtSecs)

	//lint:allow atomiczone -- bench result of a completed run, not a request-scoped snapshot
	rep.Single = runSoakSingle(ds, truth, p)
	fmt.Printf("soakbench: single: %d sessions, %d outcomes, %d conversions, %d drift alarms, %d promotions, p99 %.2fms, deterministic=%v\n",
		rep.Single.Sessions, rep.Single.Outcomes, rep.Single.Conversions,
		rep.Single.DriftAlarms, rep.Single.Promotions, rep.Single.RecommendP99Ms, rep.Single.Deterministic)

	//lint:allow atomiczone -- bench result of a completed run, not a request-scoped snapshot
	rep.Cluster = runSoakCluster(ds, truth, p)
	fmt.Printf("soakbench: cluster: %d outcomes (%d aggregated), %d drift alarms, %d promotions, p99 %.2fms, deterministic=%v\n",
		rep.Cluster.Outcomes, rep.Cluster.Aggregated, rep.Cluster.DriftAlarms,
		rep.Cluster.Promotions, rep.Cluster.RecommendP99Ms, rep.Cluster.Deterministic)

	rep.OpenLoop = runSoakOpenLoop(ds, truth, p)
	fmt.Printf("soakbench: open loop: %.0f/%.0f qps, client /recommend p50 %.2fms p99 %.2fms, %d late, %d dropped\n",
		rep.OpenLoop.AchievedQPS, rep.OpenLoop.TargetQPS,
		rep.OpenLoop.RecommendP50Ms, rep.OpenLoop.RecommendP99Ms,
		rep.OpenLoop.LateDispatches, rep.OpenLoop.Dropped)

	gates := []struct {
		name string
		ok   bool
	}{
		{"single deterministic", rep.Single.Deterministic},
		{"cluster deterministic", rep.Cluster.Deterministic},
		{"single zero dropped", rep.Single.DroppedOutcomes == 0},
		{"cluster zero dropped", rep.Cluster.DroppedOutcomes == 0},
		{"single drift→promote cycle", rep.Single.DriftAlarms >= 1 && rep.Single.Promotions >= 1},
		{"cluster drift→promote cycle", rep.Cluster.DriftAlarms >= 1 && rep.Cluster.Promotions >= 1},
		{"single /recommend p99 budget", rep.Single.RecommendP99Ms <= p.maxP99Ms},
		{"cluster /recommend p99 budget", rep.Cluster.RecommendP99Ms <= p.maxP99Ms},
		{"open loop zero dropped", rep.OpenLoop.Dropped == 0},
	}
	rep.GatesPassed = true
	for _, g := range gates {
		if !g.ok {
			rep.GatesPassed = false
			fmt.Printf("soakbench: GATE FAILED: %s\n", g.name)
		}
	}
	writeSoakReport(rep, p)
}

func writeSoakReport(rep soakReport, p soakParams) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(p.out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("soakbench: report: %s\n", p.out)
	if !rep.GatesPassed {
		fail(fmt.Errorf("soakbench: acceptance gates failed"))
	}
	fmt.Println("soakbench: all gates passed")
}

// genSoakDataset regenerates dataset I with its ground truth, matching
// genDataset("I", ...) byte for byte — and therefore matching a dataset
// file written by `profitgen -dataset I` with the same scale and seed,
// which is what lets scripts/soak_smoke.sh soak an external profitserve
// trained on such a file.
func genSoakDataset(txns, items int, seed int64) (*profitmining.Dataset, *datagen.GroundTruth) {
	ds, truth, err := datagen.GenerateWithTruth(datagen.DatasetIConfig(quest.Config{
		NumTransactions: txns,
		NumItems:        items,
		Seed:            seed,
	}, seed+1))
	if err != nil {
		fail(err)
	}
	return ds, truth
}

// soakSimConfig is the shared virtual-clock traffic profile: diurnal
// cycle spanning the run, periodic 2× bursts, and a behavior shock at
// half time that slashes purchase probability — the drift the closed
// loop must detect and refresh through.
func soakSimConfig(base string, ds *profitmining.Dataset, truth *datagen.GroundTruth, p soakParams) simload.Config {
	return simload.Config{
		BaseURL:  base,
		Dataset:  ds,
		Truth:    truth,
		Users:    p.users,
		Seed:     p.seed,
		Duration: p.virtSecs,
		Arrival: simload.ArrivalConfig{
			BaseRate:    p.rate,
			DayLength:   p.virtSecs / 2,
			DiurnalAmp:  0.4,
			BurstEvery:  p.virtSecs / 3,
			BurstLen:    p.virtSecs / 20,
			BurstFactor: 2,
		},
		MeanSessionSteps: 3,
		MeanThink:        0.5,
		ShockAt:          p.virtSecs / 2,
		ShockFactor:      0.05,
	}
}

// soakNode is one single-node serve stack with windowed maintenance:
// in-memory collector with the soak drift tuning, registry promoting
// into the collector, and a delta refresher answering drift alarms.
type soakNode struct {
	fb        *feedback.Collector
	reg       *registry.Registry
	refresher *incremental.Refresher
	ts        *httptest.Server
}

func newSoakNode(ds *profitmining.Dataset, p soakParams) *soakNode {
	fb, _, err := feedback.Open(feedback.Config{Drift: soakDrift})
	if err != nil {
		fail(err)
	}
	reg, err := registry.New(registry.Options{
		OnPromote: func(snap *registry.Snapshot) { serve.RegisterSnapshot(fb, snap) },
	})
	if err != nil {
		fail(err)
	}
	refresher := newSoakRefresher(ds, p, reg)
	ts := httptest.NewServer(serve.NewRegistry(reg, nil, fb).Handler())
	return &soakNode{fb: fb, reg: reg, refresher: refresher, ts: ts}
}

// newSoakRefresher builds the initial windowed model, submits it to reg
// (promoting it), and returns the refresher that slides the window on
// each drift alarm — the same wiring profitserve -window uses.
func newSoakRefresher(ds *profitmining.Dataset, p soakParams, reg *registry.Registry) *incremental.Refresher {
	window := p.window
	if window > len(ds.Transactions) {
		window = len(ds.Transactions)
	}
	space, err := profitmining.CompileSpace(ds.Catalog, nil, true)
	if err != nil {
		fail(err)
	}
	maint, err := incremental.New(space, ds.Transactions[:window], incremental.Config{
		Mining: mining.Options{MinSupport: p.minsup},
	})
	if err != nil {
		fail(err)
	}
	refresher, err := incremental.NewRefresher(incremental.RefreshConfig{
		Maintainer: maint,
		Catalog:    ds.Catalog,
		Source:     ds.Transactions,
		Start:      window % len(ds.Transactions),
		Slide:      p.slide,
		Registry:   reg,
	})
	if err != nil {
		fail(err)
	}
	if _, _, err := refresher.SubmitCurrent(fmt.Sprintf("soak initial window of %d", window)); err != nil {
		fail(err)
	}
	return refresher
}

// runSoakSingle executes the single-node virtual soak twice on fresh
// stacks and folds the two runs into one topology report.
func runSoakSingle(ds *profitmining.Dataset, truth *datagen.GroundTruth, p soakParams) *soakTopology {
	run := func() (*simload.Result, int, float64) {
		node := newSoakNode(ds, p)
		defer node.ts.Close()
		cfg := soakSimConfig(node.ts.URL, ds, truth, p)
		cfg.OnDrift = func() {
			if _, _, err := node.refresher.Refresh(); err != nil {
				fail(fmt.Errorf("soakbench: refresh: %w", err))
			}
		}
		res, err := simload.Run(cfg)
		if err != nil {
			fail(fmt.Errorf("soakbench: single run: %w", err))
		}
		return res, node.reg.Active().Version - 1, fetchRecommendP99(node.ts.URL)
	}
	res1, promos1, p99a := run()
	res2, promos2, p99b := run()
	top := foldTopology(res1, res2, res1.FinalStats, res2.FinalStats)
	top.Promotions = minInt(promos1, promos2)
	top.RecommendP99Ms = maxFloat(p99a, p99b)
	return top
}

// runSoakExternal drives the virtual-clock sim against a live server the
// caller owns (scripts/soak_smoke.sh). Drift recovery is the server's
// own business (-window wiring); the sim counts its receipt-reported
// alarms and watches /version for the promotion.
func runSoakExternal(ds *profitmining.Dataset, truth *datagen.GroundTruth, p soakParams) *soakTopology {
	before := fetchModelVersion(p.url)
	cfg := soakSimConfig(p.url, ds, truth, p)
	cfg.OnDrift = func() {} // count receipt alarms; recovery is server-side
	res, err := simload.Run(cfg)
	if err != nil {
		fail(fmt.Errorf("soakbench: external run: %w", err))
	}
	// The server's drift hook refreshes asynchronously; give the
	// promotion a moment to land.
	promotions := 0
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); time.Sleep(200 * time.Millisecond) {
		if v := fetchModelVersion(p.url); v > before {
			promotions = v - before
			break
		}
	}
	top := foldTopology(res, res, res.FinalStats, res.FinalStats)
	top.Promotions = promotions
	top.Deterministic = false // one run against external state proves nothing
	top.StatsSHA256 = ""
	top.RecommendP99Ms = fetchRecommendP99(p.url)
	fmt.Printf("soakbench: external %s: %d outcomes, %d drift alarms, %d promotions, %d dropped\n",
		p.url, top.Outcomes, top.DriftAlarms, top.Promotions, top.DroppedOutcomes)
	return top
}

// soakReplica is one fleet member: a durable-WAL serve stack with the
// soak drift tuning and a stable node identity, joined to the
// coordinator. Stable NodeIDs (not URLs) keep the spool fold order —
// and therefore the cluster stats bytes — identical across runs.
type soakReplica struct {
	walDir string
	reg    *registry.Registry
	ts     *httptest.Server
	rep    *cluster.Replica
}

func newSoakReplica(i int, coordinatorURL string, ln net.Listener) *soakReplica {
	walDir, err := os.MkdirTemp("", "soakbench-wal-")
	if err != nil {
		fail(err)
	}
	fb, _, err := feedback.Open(feedback.Config{Dir: walDir, Drift: soakDrift})
	if err != nil {
		fail(err)
	}
	reg, err := registry.New(registry.Options{
		OnPromote: func(snap *registry.Snapshot) { serve.RegisterSnapshot(fb, snap) },
	})
	if err != nil {
		fail(err)
	}
	ts := httptest.NewUnstartedServer(serve.NewRegistry(reg, nil, fb).Handler())
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	rep, err := cluster.NewReplica(cluster.ReplicaConfig{
		NodeID:      fmt.Sprintf("soak-replica-%d", i),
		Coordinator: coordinatorURL,
		Collector:   fb,
		WALDir:      walDir,
		Registry:    reg,
	})
	if err != nil {
		fail(err)
	}
	return &soakReplica{walDir: walDir, reg: reg, ts: ts, rep: rep}
}

// pinnedListener binds addr, retrying briefly: run 2 reclaims the exact
// addresses run 1 just released, because the coordinator routes by
// consistent hash over replica URLs — different ports would route
// traffic differently and sink the determinism gate.
func pinnedListener(addr string) net.Listener {
	if addr == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail(err)
		}
		return ln
	}
	var lastErr error
	for i := 0; i < 100; i++ {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	fail(fmt.Errorf("soakbench: rebind %s: %w", addr, lastErr))
	return nil
}

const soakReplicas = 3

// runSoakCluster executes the fleet virtual soak twice — 3 replicas
// behind a coordinator, model distribution through coordinator pull,
// WAL shipping at deterministic outcome counts — pinning replica
// addresses across the runs so routing is identical.
func runSoakCluster(ds *profitmining.Dataset, truth *datagen.GroundTruth, p soakParams) *soakTopology {
	ctx := context.Background()
	addrs := make([]string, soakReplicas)

	run := func() (*simload.Result, []byte, int, float64, int64) {
		coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
			// /outcome must never be hedged: a duplicated outcome would
			// double-record and break both accounting and determinism.
			// Replicas are in-process; the hedge never has a reason to fire.
			Hedge:          10 * time.Second,
			RequestTimeout: 30 * time.Second,
			Drift:          soakDrift,
		})
		if err != nil {
			fail(err)
		}
		cts := httptest.NewServer(coord.Handler())
		defer cts.Close()

		// Operator pipeline: the refresher submits into this registry,
		// whose promotions serialize the model and hand it to the
		// coordinator for replica pull.
		opReg, err := registry.New(registry.Options{
			OnPromote: func(snap *registry.Snapshot) {
				var buf bytes.Buffer
				if err := profitmining.WriteModel(&buf, snap.Cat, nil, snap.Rec); err != nil {
					fail(fmt.Errorf("soakbench: serialize model: %w", err))
				}
				coord.SetModel(buf.Bytes())
			},
		})
		if err != nil {
			fail(err)
		}
		refresher := newSoakRefresher(ds, p, opReg)

		stacks := make([]*soakReplica, soakReplicas)
		urls := make([]string, soakReplicas)
		for i := range stacks {
			stacks[i] = newSoakReplica(i, cts.URL, pinnedListener(addrs[i]))
			urls[i] = stacks[i].ts.URL
			addrs[i] = stacks[i].ts.Listener.Addr().String()
			defer os.RemoveAll(stacks[i].walDir)
			defer stacks[i].ts.Close()
		}
		coord.SetReplicas(urls)
		for i, st := range stacks {
			if _, err := st.rep.SyncModel(ctx); err != nil {
				fail(fmt.Errorf("soakbench: replica %d model sync: %w", i, err))
			}
		}
		coord.CheckHealth(ctx)

		cfg := soakSimConfig(cts.URL, ds, truth, p)
		cfg.OnDrift = func() {
			if _, _, err := refresher.Refresh(); err != nil {
				fail(fmt.Errorf("soakbench: cluster refresh: %w", err))
			}
			for i, st := range stacks {
				if _, err := st.rep.SyncModel(ctx); err != nil {
					fail(fmt.Errorf("soakbench: replica %d refresh sync: %w", i, err))
				}
			}
		}
		cfg.CheckEvery = p.checkEvery
		cfg.OnCheck = func() {
			for i, st := range stacks {
				if _, err := st.rep.ShipNow(ctx); err != nil {
					fail(fmt.Errorf("soakbench: replica %d ship: %w", i, err))
				}
			}
		}
		res, err := simload.Run(cfg)
		if err != nil {
			fail(fmt.Errorf("soakbench: cluster run: %w", err))
		}
		// Final ship so the spool covers every acked outcome, then the
		// cluster stats — the determinism surface — are refetched.
		cfg.OnCheck()
		stats, err := res.Client.FeedbackStats(1000000)
		if err != nil {
			fail(fmt.Errorf("soakbench: cluster stats: %w", err))
		}
		p99 := 0.0
		for _, st := range stacks {
			p99 = maxFloat(p99, fetchRecommendP99(st.ts.URL))
		}
		//lint:allow atomiczone -- one registry inspected once after the run; no cross-load invariant
		promotions := stacks[0].reg.Active().Version - 1
		return res, stats, promotions, p99, coord.Spool().Outcomes()
	}

	res1, stats1, promos1, p99a, agg1 := run()
	res2, stats2, promos2, p99b, agg2 := run()
	top := foldTopology(res1, res2, stats1, stats2)
	top.Promotions = minInt(promos1, promos2)
	top.RecommendP99Ms = maxFloat(p99a, p99b)
	top.Aggregated = agg1
	// An acked outcome missing from the spool is exactly the loss the
	// WAL-shipping tier exists to prevent; count it as dropped.
	if agg1 < res1.Outcomes {
		top.DroppedOutcomes += res1.Outcomes - agg1
	}
	if agg2 < res2.Outcomes {
		top.DroppedOutcomes += res2.Outcomes - agg2
	}
	return top
}

// runSoakOpenLoop runs the wall-clock pacer against a fresh single-node
// stack for client-side latency numbers.
func runSoakOpenLoop(ds *profitmining.Dataset, truth *datagen.GroundTruth, p soakParams) *soakOpenLoop {
	node := newSoakNode(ds, p)
	defer node.ts.Close()
	res, err := simload.RunOpenLoop(simload.OpenLoopConfig{
		BaseURL:  node.ts.URL,
		Dataset:  ds,
		Truth:    truth,
		Users:    p.users,
		Seed:     p.seed,
		QPS:      p.qps,
		Duration: time.Duration(p.wallSecs * float64(time.Second)),
	})
	if err != nil {
		fail(fmt.Errorf("soakbench: open loop: %w", err))
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
	return &soakOpenLoop{
		TargetQPS:      res.TargetQPS,
		AchievedQPS:    res.AchievedQPS,
		Seconds:        res.Elapsed.Seconds(),
		Requests:       res.Requests,
		Outcomes:       res.Outcomes,
		Conversions:    res.Conversions,
		LateDispatches: res.LateDispatches,
		Dropped:        res.Dropped,
		RecommendP50Ms: ms(res.Client.RecommendHist.Quantile(0.50)),
		RecommendP99Ms: ms(res.Client.RecommendHist.Quantile(0.99)),
		OutcomeP99Ms:   ms(res.Client.OutcomeHist.Quantile(0.99)),
	}
}

// foldTopology merges two identical-schedule runs into one report row,
// comparing their final stats byte for byte.
func foldTopology(res1, res2 *simload.Result, stats1, stats2 []byte) *soakTopology {
	sum := sha256.Sum256(stats1)
	return &soakTopology{
		Sessions:        res1.Sessions,
		Steps:           res1.Steps,
		Recommends:      res1.Recommends,
		NoRec:           res1.NoRec,
		Outcomes:        res1.Outcomes,
		Conversions:     res1.Conversions,
		DriftAlarms:     minInt64(res1.DriftAlarms, res2.DriftAlarms),
		DroppedOutcomes: res1.Dropped + res2.Dropped,
		StatsSHA256:     hex.EncodeToString(sum[:]),
		Deterministic: bytes.Equal(stats1, stats2) &&
			res1.Sessions == res2.Sessions &&
			res1.Steps == res2.Steps &&
			res1.Outcomes == res2.Outcomes &&
			res1.Conversions == res2.Conversions,
	}
}

// fetchRecommendP99 reads the server-side /recommend p99 from /metrics
// — the satellite percentile export this gate exists to consume.
func fetchRecommendP99(base string) float64 {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		fail(fmt.Errorf("soakbench: GET /metrics: %w", err))
	}
	defer resp.Body.Close()
	var m struct {
		LatencyByEndpoint map[string]struct {
			P99Ms float64 `json:"p99Ms"`
		} `json:"latencyByEndpoint"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		fail(fmt.Errorf("soakbench: decode /metrics: %w", err))
	}
	return m.LatencyByEndpoint["/recommend"].P99Ms
}

// fetchModelVersion reads the active model version from /version.
func fetchModelVersion(base string) int {
	resp, err := http.Get(base + "/version")
	if err != nil {
		fail(fmt.Errorf("soakbench: GET /version: %w", err))
	}
	defer resp.Body.Close()
	var v struct {
		Version int `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		fail(fmt.Errorf("soakbench: decode /version: %w", err))
	}
	return v.Version
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
