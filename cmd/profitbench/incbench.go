package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"profitmining"
)

// incReport is the schema of the -incbench JSON artifact consumed by CI.
type incReport struct {
	Dataset        string  `json:"dataset"`
	Txns           int     `json:"txns"`
	Items          int     `json:"items"`
	MinSupport     float64 `json:"minSupport"`
	Window         int     `json:"window"`
	Slide          int     `json:"slide"`
	Slides         int     `json:"slides"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	InitSeconds    float64 `json:"initSeconds"`
	IncSeconds     float64 `json:"incSeconds"`
	RebuildSeconds float64 `json:"rebuildSeconds"`
	Speedup        float64 `json:"speedup"`
	Identical      bool    `json:"identical"`
	RulesFinal     int     `json:"rulesFinal"`
}

// runIncBench maintains a model over a sliding window and, after every
// slide, rebuilds the same window from scratch: the rebuild is both the
// timing baseline and the byte-identity oracle. Divergence is a hard
// failure (exit 1), as is an average speedup below minSpeedup (0 turns
// the speedup gate off; the achievable factor depends on the support
// threshold — the lower it is, the more the full-window counting passes
// dominate a rebuild, and the more a windowed delta saves).
func runIncBench(name string, txns, items int, minsup float64, maxLen int, seed int64, window, slide, slides int, minSpeedup float64, out string) {
	if window < 1 || slide < 1 || slides < 1 {
		fail(fmt.Errorf("incbench: -incwindow, -incslide and -incslides must be positive"))
	}
	if need := window + slide*slides; txns < need {
		txns = need
	}
	ds := genDataset(name, txns, items, seed)
	opts := profitmining.Options{MinSupport: minsup, MaxBodyLen: maxLen}

	start := time.Now()
	inc, err := profitmining.NewIncremental(&profitmining.Dataset{
		Catalog:      ds.Catalog,
		Transactions: ds.Transactions[:window],
	}, opts)
	if err != nil {
		fail(err)
	}
	initSecs := time.Since(start).Seconds()
	fmt.Printf("incbench: dataset %s |I|=%d minsup %g, window %d, slide %d ×%d\n",
		name, items, minsup, window, slide, slides)
	fmt.Printf("incbench: initial model in %.2fs, %d rules\n",
		initSecs, inc.Recommender().Stats().RulesFinal)

	saved := func(rec *profitmining.Recommender) []byte {
		var buf bytes.Buffer
		if err := profitmining.WriteModel(&buf, ds.Catalog, nil, rec); err != nil {
			fail(err)
		}
		return buf.Bytes()
	}

	var incSecs, rebuildSecs float64
	identical := true
	for i := 0; i < slides; i++ {
		at := window + i*slide
		batch := ds.Transactions[at : at+slide]

		t0 := time.Now()
		rec, err := inc.Slide(batch)
		if err != nil {
			fail(fmt.Errorf("incbench: slide @%d: %w", at, err))
		}
		ds2 := time.Since(t0).Seconds()
		incSecs += ds2

		cur := &profitmining.Dataset{Catalog: ds.Catalog, Transactions: inc.Window()}
		t0 = time.Now()
		full, err := profitmining.Build(cur, opts)
		if err != nil {
			fail(fmt.Errorf("incbench: rebuild @%d: %w", at, err))
		}
		rb := time.Since(t0).Seconds()
		rebuildSecs += rb

		same := bytes.Equal(saved(rec), saved(full))
		if !same {
			identical = false
		}
		fmt.Printf("incbench: slide @%d: %.3fs vs rebuild %.2fs (%.1fx), identical=%v\n",
			at, ds2, rb, safeRatio(rb, ds2), same)
	}

	rep := incReport{
		Dataset:        name,
		Txns:           txns,
		Items:          items,
		MinSupport:     minsup,
		Window:         window,
		Slide:          slide,
		Slides:         slides,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		InitSeconds:    initSecs,
		IncSeconds:     incSecs,
		RebuildSeconds: rebuildSecs,
		Speedup:        safeRatio(rebuildSecs, incSecs),
		Identical:      identical,
		RulesFinal:     inc.Recommender().Stats().RulesFinal,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fail(err)
	}

	fmt.Printf("incbench: %d slides in %.2fs, rebuilds %.2fs — %.1fx; report: %s\n",
		slides, incSecs, rebuildSecs, rep.Speedup, out)
	if !identical {
		fail(fmt.Errorf("incremental model diverged from the full rebuild"))
	}
	fmt.Println("incbench: incremental model byte-identical to every rebuild")
	if minSpeedup > 0 && rep.Speedup < minSpeedup {
		fail(fmt.Errorf("incremental speedup %.2fx below the required %.2fx", rep.Speedup, minSpeedup))
	}
}
