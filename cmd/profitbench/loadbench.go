package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"profitmining"
	"profitmining/internal/arena"
	"profitmining/internal/core"
)

// loadScale is one model size in the -loadbench sweep. The three scales
// are chosen to spread the sealed file size by well over an order of
// magnitude, so the gate below can distinguish O(1) open from anything
// that walks the model.
type loadScale struct {
	Label  string
	Txns   int
	Items  int
	MinSup float64
}

var loadScales = []loadScale{
	{Label: "small", Txns: 2000, Items: 100, MinSup: 0.03},
	{Label: "medium", Txns: 8000, Items: 400, MinSup: 0.004},
	{Label: "large", Txns: 16000, Items: 800, MinSup: 0.0015},
}

// loadSizeStats is the per-size record of the -loadbench JSON artifact.
type loadSizeStats struct {
	Label            string  `json:"label"`
	Txns             int     `json:"txns"`
	Items            int     `json:"items"`
	MinSupport       float64 `json:"minSupport"`
	Rules            int     `json:"rules"`
	V2Bytes          int64   `json:"v2Bytes"`
	SealedBytes      int64   `json:"sealedBytes"`
	V2DecodeMs       float64 `json:"v2DecodeMs"`
	V2DecodeAllocs   float64 `json:"v2DecodeAllocs"`
	SealedOpenMs     float64 `json:"sealedOpenMs"`
	SealedOpenAllocs float64 `json:"sealedOpenAllocs"`
	Speedup          float64 `json:"speedup"`
}

// loadReport is the schema of the -loadbench JSON artifact consumed by
// CI.
type loadReport struct {
	Iters           int             `json:"iters"`
	Sizes           []loadSizeStats `json:"sizes"`
	SizeSpread      float64         `json:"sizeSpread"`
	V2DecodeRatio   float64         `json:"v2DecodeRatio"`
	SealedOpenRatio float64         `json:"sealedOpenRatio"`
	MaxOpenRatio    float64         `json:"maxOpenRatio"`
	Pass            bool            `json:"pass"`
}

// runLoadBench measures cold model load at three sizes: the v2 JSON
// decode path against the sealed zero-copy open. The sealed timing is
// arena.OpenFile + core.FromSealed without Verify — Verify is the
// O(file) trust gate run once per staged content hash, while open is
// the per-process (and per-hot-swap) cost whose O(1) claim this
// benchmark enforces: sealed open time may grow at most maxRatio from
// the smallest to the largest model while the file size spreads ~16×
// and the v2 decode grows with the model.
func runLoadBench(seed int64, iters int, maxRatio float64, out string) {
	if iters < 1 {
		iters = 1
	}
	dir, err := os.MkdirTemp("", "pmloadbench")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)

	sizes := make([]loadSizeStats, 0, len(loadScales))
	for _, sc := range loadScales {
		st, err := benchOneScale(sc, seed, iters, dir)
		if err != nil {
			fail(err)
		}
		fmt.Printf("loadbench: %-6s %5d rules, v2 %7.1f KiB decode %8.2fms (%.0f allocs), sealed %7.1f KiB open %8.3fms (%.0f allocs), %6.1fx\n",
			st.Label, st.Rules, float64(st.V2Bytes)/1024, st.V2DecodeMs, st.V2DecodeAllocs,
			float64(st.SealedBytes)/1024, st.SealedOpenMs, st.SealedOpenAllocs, st.Speedup)
		sizes = append(sizes, st)
	}

	first, last := sizes[0], sizes[len(sizes)-1]
	rep := loadReport{
		Iters:           iters,
		Sizes:           sizes,
		SizeSpread:      safeRatio(float64(last.SealedBytes), float64(first.SealedBytes)),
		V2DecodeRatio:   safeRatio(last.V2DecodeMs, first.V2DecodeMs),
		SealedOpenRatio: safeRatio(last.SealedOpenMs, first.SealedOpenMs),
		MaxOpenRatio:    maxRatio,
	}
	rep.Pass = rep.SealedOpenRatio <= maxRatio
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fail(err)
	}

	fmt.Printf("loadbench: sealed file size spread %.1fx; v2 decode grew %.1fx, sealed open %.2fx (gate ≤%.1fx); report: %s\n",
		rep.SizeSpread, rep.V2DecodeRatio, rep.SealedOpenRatio, maxRatio, out)
	if !rep.Pass {
		fail(fmt.Errorf("sealed open grew %.2fx from %s to %s (gate %.1fx): open is not O(1) in model size",
			rep.SealedOpenRatio, first.Label, last.Label, maxRatio))
	}
	fmt.Println("loadbench: sealed open is flat across the size spread")
}

// benchOneScale builds one model, writes it in both formats and times
// both cold-load paths.
func benchOneScale(sc loadScale, seed int64, iters int, dir string) (loadSizeStats, error) {
	st := loadSizeStats{Label: sc.Label, Txns: sc.Txns, Items: sc.Items, MinSupport: sc.MinSup}
	ds := genDataset("I", sc.Txns, sc.Items, seed)
	rec, err := profitmining.Build(ds, profitmining.Options{MinSupport: sc.MinSup, MaxBodyLen: 3})
	if err != nil {
		return st, err
	}
	st.Rules = rec.Stats().RulesFinal

	v2Path := filepath.Join(dir, sc.Label+".pmm")
	sealedPath := filepath.Join(dir, sc.Label+".pma")
	if err := profitmining.SaveModel(v2Path, ds.Catalog, nil, rec); err != nil {
		return st, err
	}
	if err := profitmining.SealModel(sealedPath, ds.Catalog, rec); err != nil {
		return st, err
	}
	if st.V2Bytes, err = fileSize(v2Path); err != nil {
		return st, err
	}
	if st.SealedBytes, err = fileSize(sealedPath); err != nil {
		return st, err
	}

	st.V2DecodeMs, st.V2DecodeAllocs, err = timeLoads(iters, func() error {
		_, v2rec, err := profitmining.LoadModel(v2Path)
		if err == nil && v2rec.Stats().RulesFinal != st.Rules {
			return fmt.Errorf("v2 reload of %s changed the rule count", sc.Label)
		}
		return err
	})
	if err != nil {
		return st, err
	}
	st.SealedOpenMs, st.SealedOpenAllocs, err = timeLoads(iters, func() error {
		m, err := arena.OpenFile(sealedPath, arena.Options{})
		if err != nil {
			return err
		}
		srec, err := core.FromSealed(m)
		if err != nil {
			m.Arena().Close()
			return err
		}
		if srec.Stats().RulesFinal != st.Rules {
			m.Arena().Close()
			return fmt.Errorf("sealed open of %s changed the rule count", sc.Label)
		}
		return m.Arena().Close()
	})
	if err != nil {
		return st, err
	}
	st.Speedup = safeRatio(st.V2DecodeMs, st.SealedOpenMs)
	return st, nil
}

// timeLoads runs f iters times and returns mean wall milliseconds and
// mean heap allocations per call. A GC fence before the loop keeps
// collector noise from a previous measurement out of the alloc counts.
func timeLoads(iters int, f func() error) (ms, allocs float64, err error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := f(); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	ms = elapsed.Seconds() * 1000 / float64(iters)
	allocs = float64(after.Mallocs-before.Mallocs) / float64(iters)
	return ms, allocs, nil
}

func fileSize(path string) (int64, error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}
