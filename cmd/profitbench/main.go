// Command profitbench reproduces the paper's full evaluation (Figures 3
// and 4 of Wang–Zhou–Han, EDBT 2002) at a configurable scale and prints
// one table per figure panel.
//
// Full paper scale (|T|=100K, |I|=1000 — takes a while):
//
//	profitbench -dataset both -txns 100000 -items 1000
//
// A laptop-sized run preserving the shapes:
//
//	profitbench -dataset I -txns 10000 -items 200
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"profitmining"
	"profitmining/internal/eval"
	"profitmining/internal/floats"
)

func main() {
	var (
		dataset  = flag.String("dataset", "I", `dataset: "I", "II" or "both"`)
		txns     = flag.Int("txns", 10000, "number of transactions (paper: 100000)")
		items    = flag.Int("items", 200, "number of non-target items (paper: 1000)")
		minsups  = flag.String("minsups", "0.0005,0.001,0.002,0.005,0.01", "comma-separated minimum supports")
		rangeSup = flag.Float64("rangesup", 0.0008, "minimum support for the profit-range panel (paper: 0.08%)")
		folds    = flag.Int("folds", 5, "cross-validation folds")
		maxLen   = flag.Int("maxlen", 3, "maximum rule body length")
		seed     = flag.Int64("seed", 1, "random seed")
		knnK     = flag.Int("k", 5, "kNN neighbor count")
		csvDir   = flag.String("csv", "", "also write raw sweep points as CSV into this directory")
		par      = flag.Int("parallel", 0, "per-build worker count (0 = one per CPU, 1 = serial; identical output either way)")

		parCheck   = flag.Bool("parcheck", false, "instead of the figure sweep, build serial vs parallel, verify byte-identical models and report timings")
		parWorkers = flag.Int("parworkers", 4, "parallel-build worker count for -parcheck")
		parOut     = flag.String("parout", "BENCH_parallel.json", "where -parcheck writes its JSON report")

		serveBench = flag.Bool("servebench", false, "instead of the figure sweep, benchmark the recommend hot path and serving endpoints, enforce the 0-alloc budget and write a JSON report")
		serveReqs  = flag.Int("servereqs", 200, "batch requests timed for the -servebench latency percentiles")
		serveOut   = flag.String("serveout", "BENCH_serve.json", "where -servebench writes its JSON report")

		incBench      = flag.Bool("incbench", false, "instead of the figure sweep, benchmark incremental window maintenance against full rebuilds, enforce byte-identity and write a JSON report")
		incWindow     = flag.Int("incwindow", 16384, "window size for -incbench (shard-aligned windows engage the pass-2 cache)")
		incSlide      = flag.Int("incslide", 1024, "transactions per slide for -incbench")
		incSlides     = flag.Int("incslides", 4, "number of slides timed by -incbench")
		incItems      = flag.Int("incitems", 1000, "number of non-target items for -incbench")
		incMinsup     = flag.Float64("incminsup", 0.004, "minimum support for -incbench")
		incMinSpeedup = flag.Float64("incminspeedup", 5, "minimum average speedup -incbench enforces (0 = report only)")
		incOut        = flag.String("incout", "BENCH_incremental.json", "where -incbench writes its JSON report")

		feedBench   = flag.Bool("feedbench", false, "instead of the figure sweep, benchmark the feedback outcome log (append + replay), verify replay reproduces the statistics and write a JSON report")
		feedRecords = flag.Int("feedrecords", 50000, "outcomes appended by -feedbench")
		feedSync    = flag.Int("feedsync", 0, "fsync policy for -feedbench (0 = OS-buffered, 1 = fsync per record)")
		feedSeg     = flag.Int64("feedseg", 4<<20, "segment size in bytes for -feedbench (small enough to exercise rotation)")
		feedOut     = flag.String("feedout", "BENCH_feedback.json", "where -feedbench writes its JSON report")

		loadBench = flag.Bool("loadbench", false, "instead of the figure sweep, benchmark cold model load (v2 decode vs sealed zero-copy open) across three model sizes, enforce the O(1)-open gate and write a JSON report")
		loadIters = flag.Int("loaditers", 5, "load repetitions timed per format and size by -loadbench")
		loadRatio = flag.Float64("loadratio", 2, "maximum sealed-open slowdown from smallest to largest model -loadbench enforces")
		loadOut   = flag.String("loadout", "BENCH_load.json", "where -loadbench writes its JSON report")

		clusterBench = flag.Bool("clusterbench", false, "instead of the figure sweep, stand up an in-process replica fleet + coordinator, enforce the distributed tier's acceptance gates and write a JSON report")
		clusterReqs  = flag.Int("clusterreqs", 200, "batch requests timed per tier by -clusterbench")
		clusterRatio = flag.Float64("clusterratio", 2, "maximum coordinator/single-node batch p99 ratio -clusterbench enforces")
		clusterOut   = flag.String("clusterout", "BENCH_cluster.json", "where -clusterbench writes its JSON report")

		soakBench    = flag.Bool("soakbench", false, "instead of the figure sweep, run the closed-loop traffic soak (virtual-clock, single node + coordinator fleet, determinism and drift-cycle gates) and write a JSON report")
		soakUsers    = flag.Int("soakusers", 1000000, "simulated user population for -soakbench")
		soakVirt     = flag.Float64("soakvirt", 45, "virtual-clock seconds simulated per -soakbench run")
		soakRate     = flag.Float64("soakrate", 20, "base session arrivals per virtual second for -soakbench")
		soakMinsup   = flag.Float64("soakminsup", 0.01, "minimum support for the -soakbench windowed model")
		soakWindow   = flag.Int("soakwindow", 2048, "initial window size for the -soakbench windowed model")
		soakSlide    = flag.Int("soakslide", 256, "transactions each drift refresh slides the -soakbench window by")
		soakQPS      = flag.Float64("soakqps", 200, "target request rate for the -soakbench wall-clock open-loop phase")
		soakWall     = flag.Float64("soakwall", 5, "wall-clock seconds of the -soakbench open-loop phase")
		soakP99Ms    = flag.Float64("soakp99ms", 50, "server-side /recommend p99 budget in ms -soakbench enforces in both topologies")
		soakCheckEvy = flag.Int("soakcheckevery", 50, "acked outcomes between WAL shipping points in the -soakbench cluster phase")
		soakURL      = flag.String("soakurl", "", "soak an external live server at this base URL instead of the in-process topologies (scripts/soak_smoke.sh mode)")
		soakOut      = flag.String("soakout", "BENCH_soak.json", "where -soakbench writes its JSON report")
	)
	flag.Parse()

	sups, err := parseFloats(*minsups)
	if err != nil {
		fail(err)
	}

	var names []string
	switch *dataset {
	case "I", "i", "1":
		names = []string{"I"}
	case "II", "ii", "2":
		names = []string{"II"}
	case "both":
		names = []string{"I", "II"}
	default:
		fail(fmt.Errorf("unknown dataset %q", *dataset))
	}

	if *parCheck {
		runParCheck(names[0], *txns, *items, sups[0], *maxLen, *seed, *parWorkers, *parOut)
		return
	}
	if *serveBench {
		runServeBench(names[0], *txns, *items, sups[0], *maxLen, *seed, *serveReqs, *serveOut)
		return
	}
	if *incBench {
		runIncBench(names[0], *txns, *incItems, *incMinsup, *maxLen, *seed, *incWindow, *incSlide, *incSlides, *incMinSpeedup, *incOut)
		return
	}
	if *feedBench {
		runFeedBench(*feedRecords, *feedSync, *feedSeg, *seed, *feedOut)
		return
	}
	if *loadBench {
		runLoadBench(*seed, *loadIters, *loadRatio, *loadOut)
		return
	}
	if *clusterBench {
		runClusterBench(names[0], *txns, *items, sups[0], *maxLen, *seed, *clusterReqs, *clusterRatio, *clusterOut)
		return
	}
	if *soakBench {
		runSoakBench(soakParams{
			txns: *txns, items: *items,
			minsup: *soakMinsup, window: *soakWindow, slide: *soakSlide,
			users: *soakUsers, seed: *seed,
			virtSecs: *soakVirt, rate: *soakRate,
			qps: *soakQPS, wallSecs: *soakWall,
			maxP99Ms: *soakP99Ms, checkEvery: *soakCheckEvy,
			out: *soakOut, url: *soakURL,
		})
		return
	}

	for _, name := range names {
		runDataset(name, *txns, *items, sups, *rangeSup, *folds, *maxLen, *seed, *knnK, *par, *csvDir)
	}
}

// parReport is the schema of the -parcheck JSON artifact consumed by CI.
type parReport struct {
	Dataset              string  `json:"dataset"`
	Txns                 int     `json:"txns"`
	Items                int     `json:"items"`
	MinSupport           float64 `json:"minSupport"`
	Workers              int     `json:"workers"`
	GOMAXPROCS           int     `json:"gomaxprocs"`
	SerialBuildSeconds   float64 `json:"serialBuildSeconds"`
	ParallelBuildSeconds float64 `json:"parallelBuildSeconds"`
	Speedup              float64 `json:"speedup"`
	Identical            bool    `json:"identical"`
}

// runParCheck builds the same model twice — strictly serial and with the
// requested worker count — and verifies the serialized models are
// byte-identical. Divergence is a hard failure (exit 1); the timings are
// informational, since the achievable speedup depends on the host's CPU
// count.
func runParCheck(name string, txns, items int, minsup float64, maxLen int, seed int64, workers int, out string) {
	ds := genDataset(name, txns, items, seed)
	build := func(parallelism int) (*profitmining.Recommender, float64, []byte) {
		start := time.Now()
		rec, err := profitmining.Build(ds, profitmining.Options{
			MinSupport:  minsup,
			MaxBodyLen:  maxLen,
			Parallelism: parallelism,
		})
		if err != nil {
			fail(err)
		}
		secs := time.Since(start).Seconds()
		var buf bytes.Buffer
		if err := profitmining.WriteModel(&buf, ds.Catalog, nil, rec); err != nil {
			fail(err)
		}
		return rec, secs, buf.Bytes()
	}

	recSerial, serialSecs, serialBytes := build(1)
	_, parSecs, parBytes := build(workers)

	rep := parReport{
		Dataset:              name,
		Txns:                 txns,
		Items:                items,
		MinSupport:           minsup,
		Workers:              workers,
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
		SerialBuildSeconds:   serialSecs,
		ParallelBuildSeconds: parSecs,
		Speedup:              safeRatio(serialSecs, parSecs),
		Identical:            bytes.Equal(serialBytes, parBytes),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fail(err)
	}

	fmt.Printf("parcheck: dataset %s |T|=%d |I|=%d minsup %g, %d rules\n",
		name, txns, items, minsup, recSerial.Stats().RulesFinal)
	fmt.Printf("parcheck: serial %.2fs, %d workers %.2fs (%.2fx on %d CPUs); report: %s\n",
		serialSecs, workers, parSecs, rep.Speedup, rep.GOMAXPROCS, out)
	if !rep.Identical {
		fail(fmt.Errorf("parallel build (%d workers) diverged from the serial model", workers))
	}
	fmt.Println("parcheck: parallel model byte-identical to serial")
}

// genDataset generates synthetic dataset I or II at the given scale.
func genDataset(name string, txns, items int, seed int64) *profitmining.Dataset {
	q := profitmining.QuestConfig{NumTransactions: txns, NumItems: items, Seed: seed}
	var ds *profitmining.Dataset
	var err error
	if name == "I" {
		ds, err = profitmining.GenerateDatasetI(q, seed+1)
	} else {
		ds, err = profitmining.GenerateDatasetII(q, seed+1)
	}
	if err != nil {
		fail(err)
	}
	return ds
}

func runDataset(name string, txns, items int, sups []float64, rangeSup float64, folds, maxLen int, seed int64, knnK, par int, csvDir string) {
	fig := "3"
	if name == "II" {
		fig = "4"
	}
	fmt.Printf("==============================================================\n")
	fmt.Printf("Dataset %s  (|T|=%d, |I|=%d, %d-fold CV; paper Figure %s)\n", name, txns, items, folds, fig)
	fmt.Printf("==============================================================\n\n")

	ds := genDataset(name, txns, items, seed)
	spaces := profitmining.FlatSpaces(ds.Catalog)

	// Figure (e): profit distribution of target sales — cheap, print
	// first while the sweep runs.
	fmt.Printf("-- Figure %s(e): profit distribution of target sales --\n", fig)
	fmt.Println(eval.TargetProfitHistogram(ds, 10).String())

	allSups := append([]float64(nil), sups...)
	if !contains(allSups, rangeSup) {
		allSups = append(allSups, rangeSup)
	}

	start := time.Now()
	points, err := profitmining.RunSweep(ds, spaces, profitmining.SweepConfig{
		Variants:    profitmining.PaperVariants,
		MinSupports: allSups,
		Behaviors: []profitmining.Behavior{
			{},
			eval.NearBehavior,
			profitmining.PaperBehavior,
		},
		Folds:  folds,
		Seed:   seed,
		Config: eval.VariantConfig{MaxBodyLen: maxLen, K: knnK, Parallelism: par},
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("(sweep: %d points in %.1fs)\n\n", len(points), time.Since(start).Seconds())

	if csvDir != "" {
		path := filepath.Join(csvDir, "dataset"+name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := eval.WriteSweepCSV(f, points); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("(raw points written to %s)\n\n", path)
	}

	onSweep := func(p profitmining.SweepPoint) bool { return contains(sups, p.MinSupport) }
	plain := eval.FilterPoints(points, func(p profitmining.SweepPoint) bool {
		return !p.Behavior.Enabled() && onSweep(p)
	})

	fmt.Printf("-- Figure %s(a): gain vs minimum support --\n", fig)
	fmt.Println(eval.FormatGainTable(plain))
	fmt.Printf("   per-fold variability (PROF+MOA):\n")
	fmt.Print(eval.FormatGainStdTable(eval.FilterPoints(plain, func(p profitmining.SweepPoint) bool {
		return p.Variant == profitmining.ProfMOA
	})))
	fmt.Println()

	fmt.Printf("-- Figure %s(b): gain with purchase-behavior settings (MOA recommenders) --\n", fig)
	behaved := eval.FilterPoints(points, func(p profitmining.SweepPoint) bool {
		return p.Behavior.Enabled() && p.Variant.UsesMOA() && onSweep(p)
	})
	fmt.Println(eval.FormatGainTable(behaved))

	fmt.Printf("-- Figure %s(c): hit rate vs minimum support --\n", fig)
	fmt.Println(eval.FormatHitRateTable(plain))

	fmt.Printf("-- Figure %s(d): hit rate by profit range (minsup %.3g%%) --\n", fig, rangeSup*100)
	ranged := eval.FilterPoints(points, func(p profitmining.SweepPoint) bool {
		return !p.Behavior.Enabled() && floats.Eq(p.MinSupport, rangeSup)
	})
	fmt.Println(eval.FormatRangeHitRates(ranged))

	fmt.Printf("-- Figure %s(f): number of rules vs minimum support (after pruning) --\n", fig)
	fmt.Println(eval.FormatRuleCountTable(eval.FilterPoints(plain, func(p profitmining.SweepPoint) bool {
		return p.Variant.RuleBased()
	})))
	fmt.Printf("   pre-pruning rule counts (generated, incl. default):\n")
	pre := eval.FilterPoints(plain, func(p profitmining.SweepPoint) bool { return p.Variant == profitmining.ProfMOA })
	for _, p := range pre {
		fmt.Printf("   PROF+MOA minsup %.3g%%: %.0f generated → %.0f final (×%.0f reduction)\n",
			p.MinSupport*100, p.Info.RulesGenerated, p.Info.RulesFinal,
			safeRatio(p.Info.RulesGenerated, p.Info.RulesFinal))
	}
	fmt.Println()

	// Section 5.3 text: the kNN post-processing variant.
	fmt.Printf("-- Section 5.3: kNN profit-rerank post-processing --\n")
	rerank, err := profitmining.RunSweep(ds, spaces, profitmining.SweepConfig{
		Variants:    []profitmining.Variant{profitmining.KNN, profitmining.KNNRerank},
		MinSupports: sups[:1],
		Folds:       folds,
		Seed:        seed,
		Config:      eval.VariantConfig{K: knnK},
	})
	if err != nil {
		fail(err)
	}
	var g, gr float64
	for _, p := range rerank {
		if p.Variant == profitmining.KNN {
			g = p.Metrics.Gain()
		} else {
			gr = p.Metrics.Gain()
		}
	}
	fmt.Printf("   kNN gain %.4f → rerank %.4f (Δ %+.1f%%)\n\n", g, gr, 100*(gr-g))
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad minsup %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no minimum supports given")
	}
	return out, nil
}

// contains reports whether v is one of the sweep-grid values. The
// tolerant comparison keeps grid membership robust when support levels
// are recomputed (e.g. percent -> fraction round trips).
func contains(xs []float64, v float64) bool {
	for _, x := range xs {
		if floats.Eq(x, v) {
			return true
		}
	}
	return false
}

func safeRatio(a, b float64) float64 {
	if b == 0 { //lint:allow floatcmp -- exact guard for the division below; any nonzero denominator is valid
		return 0
	}
	return a / b
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "profitbench: %v\n", err)
	os.Exit(1)
}
