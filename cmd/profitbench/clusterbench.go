package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"profitmining"
	"profitmining/internal/cluster"
	"profitmining/internal/feedback"
	"profitmining/internal/registry"
	"profitmining/internal/serve"
)

// clusterReport is the schema of the -clusterbench JSON artifact
// (BENCH_cluster.json) consumed by CI. It runs a whole fleet in one
// process — three replica serve stacks plus a coordinator, all over
// real HTTP — and enforces the distributed tier's three acceptance
// gates: model-hash agreement plus bit-identical stats replay, bounded
// coordinator overhead, and zero dropped outcomes through a replica
// kill.
type clusterReport struct {
	Dataset    string  `json:"dataset"`
	Txns       int     `json:"txns"`
	Items      int     `json:"items"`
	MinSupport float64 `json:"minSupport"`
	Rules      int     `json:"rules"`
	Replicas   int     `json:"replicas"`

	HashAgreement bool `json:"hashAgreement"`

	BatchBaskets  int     `json:"batchBaskets"`
	BatchRequests int     `json:"batchRequests"`
	SingleP50Ms   float64 `json:"singleP50Ms"`
	SingleP99Ms   float64 `json:"singleP99Ms"`
	CoordP50Ms    float64 `json:"coordP50Ms"`
	CoordP99Ms    float64 `json:"coordP99Ms"`
	P99Ratio      float64 `json:"p99Ratio"`
	MaxP99Ratio   float64 `json:"maxP99Ratio"`

	OutcomesAcked      int64 `json:"outcomesAcked"`
	OutcomesAggregated int64 `json:"outcomesAggregated"`
	DroppedOutcomes    int64 `json:"droppedOutcomes"`

	ReplayIdentical bool `json:"replayIdentical"`

	GatesPassed bool `json:"gatesPassed"`
}

// clusterReplicas is the fleet size the bench stands up.
const clusterReplicas = 3

// benchStack is one in-process replica: the ordinary serve stack with a
// durable WAL plus its cluster shipping/sync client.
type benchStack struct {
	walDir string
	fb     *feedback.Collector
	reg    *registry.Registry
	ts     *httptest.Server
	rep    *cluster.Replica
	killed bool
}

// runClusterBench stands up the fleet, runs the three phases, writes
// BENCH_cluster.json, and exits non-zero if any gate fails.
func runClusterBench(name string, txns, items int, minsup float64, maxLen int, seed int64, requests int, maxRatio float64, out string) {
	ctx := context.Background()
	ds := genDataset(name, txns, items, seed)
	rec, err := profitmining.Build(ds, profitmining.Options{MinSupport: minsup, MaxBodyLen: maxLen})
	if err != nil {
		fail(err)
	}
	var modelBuf bytes.Buffer
	if err := profitmining.WriteModel(&modelBuf, ds.Catalog, nil, rec); err != nil {
		fail(err)
	}

	// Coordinator first: replicas need its URL to join.
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Drift: feedback.DriftConfig{},
	})
	if err != nil {
		fail(err)
	}
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()
	coord.SetModel(modelBuf.Bytes())

	stacks := make([]*benchStack, clusterReplicas)
	urls := make([]string, clusterReplicas)
	for i := range stacks {
		stacks[i] = newBenchStack(cts.URL)
		urls[i] = stacks[i].ts.URL
		defer os.RemoveAll(stacks[i].walDir)
		defer stacks[i].ts.Close()
	}
	coord.SetReplicas(urls)
	for _, st := range stacks {
		if _, err := st.rep.SyncModel(ctx); err != nil {
			fail(fmt.Errorf("clusterbench: model sync: %w", err))
		}
	}
	coord.CheckHealth(ctx)

	rep := clusterReport{
		Dataset:       name,
		Txns:          txns,
		Items:         items,
		MinSupport:    minsup,
		Rules:         rec.Stats().RulesFinal,
		Replicas:      clusterReplicas,
		BatchBaskets:  batchSize,
		BatchRequests: requests,
		MaxP99Ratio:   maxRatio,
	}

	// Phase 0 — hash agreement: content-hash sync must leave every
	// replica serving exactly the bytes the coordinator distributes.
	rep.HashAgreement = true
	for i, st := range stacks {
		//lint:allow atomiczone -- each iteration inspects a different replica's registry, not the same snapshot twice
		snap := st.reg.Active()
		if snap == nil || snap.Hash != coord.ModelHash() {
			rep.HashAgreement = false
			fmt.Printf("clusterbench: replica %d hash disagrees with coordinator\n", i)
		}
	}

	// Phase A — routing overhead: p99 of full batch-64 round trips,
	// single replica vs through the coordinator, both over real HTTP.
	baskets := probeBaskets(ds, 256)
	if len(baskets) == 0 {
		fail(fmt.Errorf("clusterbench: dataset produced no non-empty baskets"))
	}
	batchBody := batchPayload(ds.Catalog, baskets, batchSize)
	// Median of three interleaved rounds: with n requests per round the
	// p99 is within a sample or two of the max, so one GC pause or
	// scheduler hiccup landing in a coordinator-side sample would decide
	// the gate. A real routing overhead shows up in every round; a noise
	// spike shows up in one, and the median round discards it.
	type round struct {
		single, coord []float64
		ratio         float64
	}
	rounds := make([]round, 3)
	for i := range rounds {
		s, c := timeRequestsInterleaved(stacks[0].ts.URL+"/recommend/batch", cts.URL+"/recommend/batch", batchBody, requests)
		rounds[i] = round{single: s, coord: c, ratio: safeRatio(percentile(c, 0.99), percentile(s, 0.99))}
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i].ratio < rounds[j].ratio })
	med := rounds[len(rounds)/2]
	rep.SingleP50Ms = percentile(med.single, 0.50)
	rep.SingleP99Ms = percentile(med.single, 0.99)
	rep.CoordP50Ms = percentile(med.coord, 0.50)
	rep.CoordP99Ms = percentile(med.coord, 0.99)
	rep.P99Ratio = med.ratio

	// Phase B — kill one replica under outcome load: every /outcome the
	// coordinator acks must survive into the cluster aggregate, even the
	// ones acked by the replica that dies (its WAL outlives its socket
	// and re-ships on recovery).
	ruleID := firstRuleID(cts.URL, ds, baskets)
	const outcomeTotal = 200
	post := func(i int) {
		body := fmt.Sprintf(`{"requestID":"bench-%d","ruleID":%q,"modelVersion":1,"bought":true,"qty":1}`, i, ruleID)
		postOnce(cts.URL+"/outcome", []byte(body))
	}
	for i := 0; i < outcomeTotal/2; i++ {
		post(i)
	}
	// Kill the primary: the replica holding the most outcomes so far is
	// the one whose loss would drop data if the pipeline were lossy.
	kill := 0
	most := int64(-1)
	for i, st := range stacks {
		if n := replicaOutcomes(st.ts.URL); n > most {
			most, kill = n, i
		}
	}
	stacks[kill].ts.Close()
	stacks[kill].killed = true
	fmt.Printf("clusterbench: killed replica %d (%d outcomes acked so far) under load\n", kill, most)
	for i := outcomeTotal / 2; i < outcomeTotal; i++ {
		post(i)
	}
	rep.OutcomesAcked = outcomeTotal

	// Recovery: every replica — including the killed one, whose WAL is
	// intact — seals and ships its backlog to the coordinator.
	for i, st := range stacks {
		if _, err := st.rep.ShipNow(ctx); err != nil {
			fail(fmt.Errorf("clusterbench: replica %d ship: %w", i, err))
		}
	}
	rep.OutcomesAggregated = coord.Spool().Outcomes()
	rep.DroppedOutcomes = rep.OutcomesAcked - rep.OutcomesAggregated
	if rep.DroppedOutcomes < 0 {
		rep.DroppedOutcomes = 0
	}

	// Phase C — deterministic replay: the same segment set folded in
	// ascending and descending arrival order must produce byte-identical
	// cluster stats.
	rep.ReplayIdentical = replayBothWays(stacks)

	rep.GatesPassed = rep.HashAgreement &&
		rep.P99Ratio <= maxRatio &&
		rep.DroppedOutcomes == 0 &&
		rep.ReplayIdentical

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fail(err)
	}

	fmt.Printf("clusterbench: dataset %s |T|=%d |I|=%d minsup %g, %d rules, %d replicas\n",
		name, txns, items, minsup, rep.Rules, rep.Replicas)
	fmt.Printf("clusterbench: batch[%d] single p50 %.2fms p99 %.2fms; coordinator p50 %.2fms p99 %.2fms (ratio %.2f, max %.1f)\n",
		batchSize, rep.SingleP50Ms, rep.SingleP99Ms, rep.CoordP50Ms, rep.CoordP99Ms, rep.P99Ratio, maxRatio)
	fmt.Printf("clusterbench: outcomes acked %d, aggregated %d, dropped %d; replay identical: %v; report: %s\n",
		rep.OutcomesAcked, rep.OutcomesAggregated, rep.DroppedOutcomes, rep.ReplayIdentical, out)
	if !rep.GatesPassed {
		fail(fmt.Errorf("clusterbench: acceptance gates failed (hashAgreement=%v p99Ratio=%.2f dropped=%d replayIdentical=%v)",
			rep.HashAgreement, rep.P99Ratio, rep.DroppedOutcomes, rep.ReplayIdentical))
	}
	fmt.Println("clusterbench: all gates passed")
}

// newBenchStack builds one replica: durable-WAL collector, registry
// promoting into the collector, serve handler on a real listener, and
// the cluster client joined to the coordinator.
func newBenchStack(coordinatorURL string) *benchStack {
	walDir, err := os.MkdirTemp("", "clusterbench-wal-")
	if err != nil {
		fail(err)
	}
	fb, _, err := feedback.Open(feedback.Config{Dir: walDir})
	if err != nil {
		fail(err)
	}
	reg, err := registry.New(registry.Options{
		OnPromote: func(snap *registry.Snapshot) { serve.RegisterSnapshot(fb, snap) },
	})
	if err != nil {
		fail(err)
	}
	ts := httptest.NewServer(serve.NewRegistry(reg, nil, fb).Handler())
	rep, err := cluster.NewReplica(cluster.ReplicaConfig{
		NodeID:      ts.URL,
		Coordinator: coordinatorURL,
		Collector:   fb,
		WALDir:      walDir,
		Registry:    reg,
	})
	if err != nil {
		fail(err)
	}
	return &benchStack{walDir: walDir, fb: fb, reg: reg, ts: ts, rep: rep}
}

// timeRequestsInterleaved POSTs body n times to each of two endpoints,
// alternating request-by-request, and returns the per-request
// milliseconds for each, ascending. A short untimed warmup on both
// first establishes connections, so the percentiles measure steady
// state rather than the first TCP handshake. The interleaving matters
// for the p99 *ratio* gate: a transient load spike on the host lands in
// both distributions instead of inflating whichever side happened to be
// measured during it.
func timeRequestsInterleaved(urlA, urlB string, body []byte, n int) (a, b []float64) {
	for i := 0; i < 10; i++ {
		postOnce(urlA, body)
		postOnce(urlB, body)
	}
	timeOnce := func(url string) float64 {
		start := time.Now()
		postOnce(url, body)
		return float64(time.Since(start).Microseconds()) / 1e3
	}
	a = make([]float64, 0, n)
	b = make([]float64, 0, n)
	for i := 0; i < n; i++ {
		a = append(a, timeOnce(urlA))
		b = append(b, timeOnce(urlB))
	}
	sort.Float64s(a)
	sort.Float64s(b)
	return a, b
}

// postOnce POSTs one JSON body and fails the bench on any non-200.
func postOnce(url string, body []byte) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		fail(fmt.Errorf("clusterbench: POST %s: %w", url, err))
	}
	defer resp.Body.Close()
	//lint:allow droppederr -- best-effort diagnostic text for the failure message; the status code decides
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Errorf("clusterbench: POST %s: %d %s", url, resp.StatusCode, bytes.TrimSpace(data)))
	}
}

// firstRuleID scores one basket through the coordinator and returns the
// top recommendation's rule ID — a real, reportable rule.
func firstRuleID(coordinatorURL string, ds *profitmining.Dataset, baskets []profitmining.Basket) string {
	for _, bk := range baskets {
		body, err := json.Marshal(toRecReq(ds.Catalog, bk, 1))
		if err != nil {
			fail(err)
		}
		resp, err := http.Post(coordinatorURL+"/recommend", "application/json", bytes.NewReader(body))
		if err != nil {
			fail(fmt.Errorf("clusterbench: recommend: %w", err))
		}
		var out struct {
			Recommendations []struct {
				RuleID string `json:"ruleID"`
			} `json:"recommendations"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err == nil && len(out.Recommendations) > 0 && out.Recommendations[0].RuleID != "" {
			return out.Recommendations[0].RuleID
		}
	}
	fail(fmt.Errorf("clusterbench: no basket produced a recommendation to report outcomes against"))
	return ""
}

// replicaOutcomes reads one replica's local outcome count from its
// /feedback/stats.
func replicaOutcomes(url string) int64 {
	resp, err := http.Get(url + "/feedback/stats")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	var body struct {
		Outcomes int64 `json:"outcomes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return -1
	}
	return body.Outcomes
}

// replayBothWays ingests every sealed segment of every replica into two
// fresh spools — ascending and descending arrival order — and reports
// whether the folded stats are byte-identical.
func replayBothWays(stacks []*benchStack) bool {
	type shipped struct {
		node string
		seq  int
		data []byte
	}
	var segs []shipped
	for _, st := range stacks {
		paths, err := feedback.SealedSegmentPaths(st.walDir)
		if err != nil {
			fail(err)
		}
		for _, p := range paths {
			seq, err := feedback.SegmentSeq(p)
			if err != nil {
				fail(err)
			}
			data, err := os.ReadFile(p)
			if err != nil {
				fail(err)
			}
			segs = append(segs, shipped{node: st.ts.URL, seq: seq, data: data})
		}
	}
	fold := func(reverse bool) []byte {
		s, err := cluster.NewSpool("", feedback.DriftConfig{})
		if err != nil {
			fail(err)
		}
		for i := range segs {
			sg := segs[i]
			if reverse {
				sg = segs[len(segs)-1-i]
			}
			if _, _, err := s.Ingest(sg.node, sg.seq, registry.HashBytes(sg.data), sg.data); err != nil {
				fail(err)
			}
		}
		out, err := json.Marshal(s.Stats(-1))
		if err != nil {
			fail(err)
		}
		return out
	}
	return bytes.Equal(fold(false), fold(true))
}
