package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"profitmining"
	"profitmining/internal/model"
	"profitmining/internal/serve"
)

// serveReport is the schema of the -servebench JSON artifact
// (BENCH_serve.json) consumed by CI. Core numbers come from
// testing.Benchmark / testing.AllocsPerRun over the library hot path;
// the batch latencies are wall-time percentiles over full
// POST /recommend/batch requests through the HTTP handler.
type serveReport struct {
	Dataset    string  `json:"dataset"`
	Txns       int     `json:"txns"`
	Items      int     `json:"items"`
	MinSupport float64 `json:"minSupport"`
	Rules      int     `json:"rules"`
	GOMAXPROCS int     `json:"gomaxprocs"`

	RecommendNsOp         float64 `json:"recommendNsOp"`
	RecommendAllocsOp     float64 `json:"recommendAllocsOp"`
	RecommendTopKNsOp     float64 `json:"recommendTopKNsOp"`
	RecommendTopKAllocsOp float64 `json:"recommendTopKAllocsOp"`

	ServeRecommendNsOp     float64 `json:"serveRecommendNsOp"`
	ServeRecommendAllocsOp float64 `json:"serveRecommendAllocsOp"`

	BatchBaskets  int     `json:"batchBaskets"`
	BatchRequests int     `json:"batchRequests"`
	BatchP50Ms    float64 `json:"batchP50Ms"`
	BatchP99Ms    float64 `json:"batchP99Ms"`

	AllocBudget      float64 `json:"allocBudget"`
	AllocGuardPassed bool    `json:"allocGuardPassed"`
}

// batchSize is how many baskets each measured /recommend/batch request
// carries.
const batchSize = 64

// runServeBench builds one model, benchmarks the recommend hot path and
// the serving endpoint, and writes BENCH_serve.json. The core hot path
// (Recommend, RecommendTopKInto with pooled scratch) is held to an
// allocation budget of zero; exceeding it is a hard failure (exit 1) so
// CI catches regressions that reintroduce per-call garbage.
func runServeBench(name string, txns, items int, minsup float64, maxLen int, seed int64, requests int, out string) {
	ds := genDataset(name, txns, items, seed)
	rec, err := profitmining.Build(ds, profitmining.Options{
		MinSupport: minsup,
		MaxBodyLen: maxLen,
	})
	if err != nil {
		fail(err)
	}

	baskets := probeBaskets(ds, 256)
	if len(baskets) == 0 {
		fail(fmt.Errorf("servebench: dataset produced no non-empty baskets"))
	}

	rep := serveReport{
		Dataset:       name,
		Txns:          txns,
		Items:         items,
		MinSupport:    minsup,
		Rules:         rec.Stats().RulesFinal,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		BatchBaskets:  batchSize,
		BatchRequests: requests,
		AllocBudget:   0,
	}

	// Core hot path: ns/op via the testing harness, allocations via
	// AllocsPerRun (which warms up and pins GOMAXPROCS to 1, matching
	// the 0-alloc guard test in internal/core).
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec.Recommend(baskets[i%len(baskets)])
		}
	})
	rep.RecommendNsOp = float64(r.NsPerOp())
	rep.RecommendAllocsOp = allocsPerOp(r)

	var topKDst []profitmining.Recommendation
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			topKDst = rec.RecommendTopKInto(topKDst, baskets[i%len(baskets)], 5)
		}
	})
	rep.RecommendTopKNsOp = float64(r.NsPerOp())
	rep.RecommendTopKAllocsOp = allocsPerOp(r)

	// The steady-state allocation guard. AllocsPerRun reports the
	// average over its runs, so any per-call allocation shows up ≥ 1.
	guard := testing.AllocsPerRun(200, func() {
		for _, bk := range baskets {
			rec.Recommend(bk)
			topKDst = rec.RecommendTopKInto(topKDst, bk, 5)
		}
	})
	rep.AllocGuardPassed = guard <= rep.AllocBudget

	// Serving path: one POST /recommend through the handler per op.
	handler := serve.New(ds.Catalog, rec).Handler()
	payloads := jsonPayloads(ds.Catalog, baskets)
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			serveOnce(b, handler, "/recommend", payloads[i%len(payloads)])
		}
	})
	rep.ServeRecommendNsOp = float64(r.NsPerOp())
	rep.ServeRecommendAllocsOp = allocsPerOp(r)

	// Batch latency percentiles: `requests` full /recommend/batch round
	// trips of batchSize baskets each, timed individually.
	batchBody := batchPayload(ds.Catalog, baskets, batchSize)
	times := make([]float64, 0, requests)
	for i := 0; i < requests; i++ {
		start := time.Now()
		serveOnce(nil, handler, "/recommend/batch", batchBody)
		times = append(times, float64(time.Since(start).Microseconds())/1e3)
	}
	sort.Float64s(times)
	rep.BatchP50Ms = percentile(times, 0.50)
	rep.BatchP99Ms = percentile(times, 0.99)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fail(err)
	}

	fmt.Printf("servebench: dataset %s |T|=%d |I|=%d minsup %g, %d rules\n",
		name, txns, items, minsup, rep.Rules)
	fmt.Printf("servebench: Recommend %.0f ns/op (%.2f allocs/op), TopK %.0f ns/op (%.2f allocs/op)\n",
		rep.RecommendNsOp, rep.RecommendAllocsOp, rep.RecommendTopKNsOp, rep.RecommendTopKAllocsOp)
	fmt.Printf("servebench: ServeRecommend %.0f ns/op (%.1f allocs/op); batch[%d] p50 %.2fms p99 %.2fms; report: %s\n",
		rep.ServeRecommendNsOp, rep.ServeRecommendAllocsOp, batchSize, rep.BatchP50Ms, rep.BatchP99Ms, out)
	if !rep.AllocGuardPassed {
		fail(fmt.Errorf("servebench: hot path allocated %.2f allocs per probe sweep (budget %.0f)", guard, rep.AllocBudget))
	}
	fmt.Println("servebench: hot path within allocation budget (0 allocs/op)")
}

// probeBaskets extracts up to n deterministic probe baskets (the
// non-target sales of the dataset's own transactions).
func probeBaskets(ds *profitmining.Dataset, n int) []profitmining.Basket {
	var out []profitmining.Basket
	for _, txn := range ds.Transactions {
		if len(txn.NonTarget) == 0 {
			continue
		}
		out = append(out, profitmining.Basket(txn.NonTarget))
		if len(out) == n {
			break
		}
	}
	return out
}

// saleReq / recReq / batchReq mirror the serve package's JSON request
// shapes (items by name, promotion codes by per-item index).
type saleReq struct {
	Item    string  `json:"item"`
	PromoIx int     `json:"promoIx"`
	Qty     float64 `json:"qty,omitempty"`
}

type recReq struct {
	Basket []saleReq `json:"basket"`
	K      int       `json:"k,omitempty"`
}

type batchReq struct {
	Baskets []recReq `json:"baskets"`
}

func toRecReq(cat *profitmining.Catalog, bk profitmining.Basket, k int) recReq {
	req := recReq{K: k}
	for _, sl := range bk {
		req.Basket = append(req.Basket, saleReq{
			Item:    cat.Item(sl.Item).Name,
			PromoIx: promoIndex(cat, sl),
			Qty:     sl.Qty,
		})
	}
	return req
}

func promoIndex(cat *profitmining.Catalog, sl model.Sale) int {
	for i, p := range cat.Promos(sl.Item) {
		if p == sl.Promo {
			return i
		}
	}
	return 0
}

func jsonPayloads(cat *profitmining.Catalog, baskets []profitmining.Basket) [][]byte {
	out := make([][]byte, len(baskets))
	for i, bk := range baskets {
		data, err := json.Marshal(toRecReq(cat, bk, 2))
		if err != nil {
			fail(err)
		}
		out[i] = data
	}
	return out
}

func batchPayload(cat *profitmining.Catalog, baskets []profitmining.Basket, size int) []byte {
	var req batchReq
	for i := 0; i < size; i++ {
		req.Baskets = append(req.Baskets, toRecReq(cat, baskets[i%len(baskets)], 2))
	}
	data, err := json.Marshal(req)
	if err != nil {
		fail(err)
	}
	return data
}

// serveOnce pushes one request through the handler in-process (no
// network, no client) and fails hard on a non-200 response.
func serveOnce(b *testing.B, h http.Handler, path string, body []byte) {
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		err := fmt.Errorf("servebench: %s returned %d: %s", path, w.Code, w.Body.Bytes())
		if b != nil {
			b.Fatal(err)
		}
		fail(err)
	}
}

func allocsPerOp(r testing.BenchmarkResult) float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.MemAllocs) / float64(r.N)
}

// percentile returns the p-quantile of ascending xs (nearest-rank).
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(p * float64(len(xs)))
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}
