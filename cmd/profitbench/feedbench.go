package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"profitmining/internal/feedback"
)

// feedReport is the schema of the -feedbench JSON artifact
// (BENCH_feedback.json) consumed by CI: outcome-log append and replay
// throughput, the on-disk footprint, and whether a full replay
// reproduced the in-memory statistics exactly.
type feedReport struct {
	Records      int   `json:"records"`
	Rules        int   `json:"rules"`
	SyncEvery    int   `json:"syncEvery"`
	SegmentBytes int64 `json:"segmentBytes"`
	GOMAXPROCS   int   `json:"gomaxprocs"`

	AppendSeconds   float64 `json:"appendSeconds"`
	AppendPerSec    float64 `json:"appendPerSec"`
	ReplaySeconds   float64 `json:"replaySeconds"`
	ReplayPerSec    float64 `json:"replayPerSec"`
	WALBytes        int64   `json:"walBytes"`
	WALSegments     int     `json:"walSegments"`
	BytesPerRecord  float64 `json:"bytesPerRecord"`
	ReplayedRecords int64   `json:"replayedRecords"`

	StatsMatch bool `json:"statsMatch"`
}

// feedRules is how many synthetic rule projections the benchmark model
// registers; outcomes spread across them.
const feedRules = 64

// runFeedBench measures the feedback subsystem end to end: append
// `records` synthetic outcomes through the collector (WAL framing, CRC,
// rotation, aggregation, drift detection all on), then close, reopen,
// and replay the log. Replay must reproduce the exact pre-close
// statistics — a mismatch is a hard failure (exit 1), since it would
// mean a restart silently changes the accounting.
func runFeedBench(records, syncEvery int, segBytes int64, seed int64, out string) {
	dir, err := os.MkdirTemp("", "feedbench-*")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)

	cfg := feedback.Config{
		Dir: dir,
		WAL: feedback.WALOptions{SyncEvery: syncEvery, MaxSegmentBytes: segBytes},
		// The synthetic stream is intentionally miscalibrated (most
		// outcomes are misses), so park the threshold far away: this
		// benchmark measures throughput, not detection.
		Drift: feedback.DriftConfig{Lambda: 1e18},
	}
	c, _, err := feedback.Open(cfg)
	if err != nil {
		fail(err)
	}

	projs := make([]feedback.RuleProjection, feedRules)
	for i := range projs {
		projs[i] = feedback.RuleProjection{
			ID:     fmt.Sprintf("rbench%010x", i),
			ProfRe: 0.5 + float64(i)*0.01,
			Conf:   0.4,
			Price:  5 + float64(i%7),
			Cost:   3,
		}
	}
	if err := c.RegisterModel(1, "feedbench", projs); err != nil {
		fail(err)
	}

	// Deterministic outcome stream from a bare LCG — no math/rand, so
	// the byte stream (and therefore the report) is stable per seed.
	rng := uint64(seed)*2862933555777941757 + 3037000493
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}

	start := time.Now()
	for i := 0; i < records; i++ {
		p := projs[next(len(projs))]
		o := feedback.Outcome{
			RequestID:    fmt.Sprintf("req-%08d", i),
			RuleID:       p.ID,
			ModelVersion: 1,
		}
		if next(4) == 0 {
			o.Bought = true
			o.Qty = float64(1 + next(3))
			o.PaidPrice = p.Price - float64(next(2))
		}
		if _, err := c.Record(o); err != nil {
			fail(err)
		}
	}
	appendSecs := time.Since(start).Seconds()

	before := c.Stats(0)
	bytes, segs, err := c.LogSize()
	if err != nil {
		fail(err)
	}
	if err := c.Close(); err != nil {
		fail(err)
	}

	start = time.Now()
	c2, replayed, err := feedback.Open(cfg)
	if err != nil {
		fail(err)
	}
	replaySecs := time.Since(start).Seconds()
	after := c2.Stats(0)
	if err := c2.Close(); err != nil {
		fail(err)
	}

	rep := feedReport{
		Records:         records,
		Rules:           feedRules,
		SyncEvery:       syncEvery,
		SegmentBytes:    segBytes,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		AppendSeconds:   appendSecs,
		AppendPerSec:    safeRatio(float64(records), appendSecs),
		ReplaySeconds:   replaySecs,
		ReplayPerSec:    safeRatio(float64(replayed.Records), replaySecs),
		WALBytes:        bytes,
		WALSegments:     segs,
		BytesPerRecord:  safeRatio(float64(bytes), float64(records)),
		ReplayedRecords: replayed.Records,
		StatsMatch:      reflect.DeepEqual(before, after),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fail(err)
	}

	fmt.Printf("feedbench: %d outcomes over %d rules, syncEvery %d, segments of %d bytes\n",
		records, feedRules, syncEvery, segBytes)
	fmt.Printf("feedbench: append %.0f records/s (%.2fs), replay %.0f records/s (%.2fs)\n",
		rep.AppendPerSec, appendSecs, rep.ReplayPerSec, replaySecs)
	fmt.Printf("feedbench: WAL %d bytes in %d segment(s), %.1f bytes/record; report: %s\n",
		bytes, segs, rep.BytesPerRecord, out)
	if !rep.StatsMatch {
		fail(fmt.Errorf("feedbench: replayed statistics diverged from the live run"))
	}
	fmt.Println("feedbench: replay reproduced the live statistics exactly")
}
