// Command profitgen generates profit-mining datasets.
//
// It produces the paper's synthetic datasets (Section 5.2) at any scale,
// or the bundled grocery dataset, in the library's line-oriented JSON
// format:
//
//	profitgen -dataset I  -txns 100000 -items 1000 -out dataset1.pmjl
//	profitgen -dataset II -txns 100000 -items 1000 -out dataset2.pmjl
//	profitgen -dataset grocery -txns 5000 -out grocery.pmjl
//
// A synthetic multi-level concept hierarchy can be attached to flat
// datasets, and raw market-basket files (one whitespace-separated
// transaction per line) can be converted by naming the target tokens:
//
//	profitgen -dataset I -txns 10000 -items 200 -hierarchy 10 -out h.pmjl
//	profitgen -baskets retail.dat -targets 39,48 -out retail.pmjl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"profitmining"
	"profitmining/internal/dataio"
)

func main() {
	var (
		dataset = flag.String("dataset", "I", `dataset to generate: "I", "II" or "grocery"`)
		txns    = flag.Int("txns", 100000, "number of transactions (|T|)")
		items   = flag.Int("items", 1000, "number of non-target items (|I|)")
		avgLen  = flag.Float64("avglen", 10, "average transaction length")
		seed    = flag.Int64("seed", 1, "random seed")
		fanout  = flag.Int("hierarchy", 0, "attach a synthetic concept hierarchy with this fanout (0 = flat)")
		baskets = flag.String("baskets", "", "convert a raw basket file (one transaction per line) instead of generating")
		targets = flag.String("targets", "", "comma-separated target tokens for -baskets")
		out     = flag.String("out", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "profitgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var (
		ds   *profitmining.Dataset
		spec *profitmining.HierarchySpec
		err  error
	)
	if *baskets != "" {
		ds, err = convertBaskets(*baskets, *targets, *seed)
	} else {
		ds, spec, err = generate(*dataset, *txns, *items, *avgLen, *seed)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "profitgen: %v\n", err)
		os.Exit(1)
	}
	if *fanout > 0 {
		if spec != nil {
			fmt.Fprintln(os.Stderr, "profitgen: -hierarchy only applies to flat synthetic datasets")
			os.Exit(2)
		}
		spec = syntheticSpec(ds, *fanout)
	}
	if err := profitmining.SaveDataset(*out, ds, spec); err != nil {
		fmt.Fprintf(os.Stderr, "profitgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d transactions, %d items (%d targets), %d promotion codes, recorded profit %.2f\n",
		*out, len(ds.Transactions), ds.Catalog.NumItems(), len(ds.Catalog.TargetItems()),
		ds.Catalog.NumPromos(), ds.RecordedProfit())
}

func syntheticSpec(ds *profitmining.Dataset, fanout int) *profitmining.HierarchySpec {
	return dataio.SyntheticHierarchySpec(ds.Catalog, fanout)
}

func convertBaskets(path, targets string, seed int64) (*profitmining.Dataset, error) {
	if targets == "" {
		return nil, fmt.Errorf("-baskets needs -targets (comma-separated target tokens)")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return profitmining.ReadBaskets(f, profitmining.BasketOptions{
		Targets: strings.Split(targets, ","),
		Seed:    seed,
	})
}

func generate(dataset string, txns, items int, avgLen float64, seed int64) (*profitmining.Dataset, *profitmining.HierarchySpec, error) {
	q := profitmining.QuestConfig{
		NumTransactions: txns,
		NumItems:        items,
		AvgTxnLen:       avgLen,
		Seed:            seed,
	}
	switch dataset {
	case "I", "i", "1":
		ds, err := profitmining.GenerateDatasetI(q, seed+1)
		return ds, nil, err
	case "II", "ii", "2":
		ds, err := profitmining.GenerateDatasetII(q, seed+1)
		return ds, nil, err
	case "grocery":
		g := profitmining.NewGrocery(txns, seed)
		spec := &profitmining.HierarchySpec{
			Concepts: []profitmining.ConceptSpec{
				{Name: "Cosmetics"},
				{Name: "Food"},
				{Name: "Meat", Parents: []string{"Food"}},
				{Name: "Bakery", Parents: []string{"Food"}},
			},
			Placements: map[string][]string{
				"Perfume":       {"Cosmetics"},
				"Shampoo":       {"Cosmetics"},
				"FlakedChicken": {"Meat"},
				"Bread":         {"Bakery"},
			},
		}
		return g.Dataset, spec, nil
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q (want I, II or grocery)", dataset)
	}
}
