package main

import (
	"reflect"
	"testing"
)

// TestRegisteredSuite pins the exact analyzer set profitlint ships:
// adding or removing a check must be a conscious, test-visible change.
func TestRegisteredSuite(t *testing.T) {
	var names []string
	for _, a := range suite {
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run function", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		names = append(names, a.Name)
	}
	want := []string{
		"arenaonly", "atomiczone", "detguard", "droppederr", "floatcmp",
		"hotpath", "leakcheck", "poolescape", "rankorder", "walorder",
	}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("registered analyzers = %v, want %v", names, want)
	}
}
