// Profitlint is profitmining's project-specific static checker: the
// invariants the compiler cannot enforce (exact float comparison bans,
// the single-home MPF rank order, determinism of the mining core,
// never-dropped errors) become build failures instead of flaky
// benchmarks. See internal/analyzers for the individual checks.
//
// Run standalone:
//
//	go run ./cmd/profitlint ./...
//
// or through the go command's vet driver, which adds build caching and
// analysis of test files:
//
//	go install ./cmd/profitlint
//	go vet -vettool=$(go env GOPATH)/bin/profitlint ./...
package main

import (
	"profitmining/internal/analysis"
	"profitmining/internal/analyzers"
)

// suite is the registered analyzer set; cmd/profitlint's test pins it.
var suite = analyzers.All()

func main() {
	analysis.Main(suite...)
}
