package profitmining_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"profitmining"
)

// TestServingEquivalenceAcrossParallelism is the serving-side
// determinism contract backing the zero-allocation hot path: models
// built at any Parallelism must produce byte-identical recommendation
// lists — same items, same promotion codes, same rules, same rank order
// — over a large randomized basket stream. It complements
// TestParallelBuildIsByteIdentical (which pins the serialized model) by
// pinning what the model *says*, end to end through ExpandBasketInto,
// the flattened matcher, and the pooled top-K scan.
func TestServingEquivalenceAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed recommend matrix")
	}
	const numBaskets = 1000
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ds, err := profitmining.GenerateDatasetI(profitmining.QuestConfig{
				NumTransactions: 3000,
				NumItems:        60,
				Seed:            seed,
			}, seed+1)
			if err != nil {
				t.Fatal(err)
			}
			baskets := randomBaskets(ds, numBaskets, seed+2)
			opts := profitmining.Options{MinSupport: 0.003, MaxBodyLen: 3}

			var reference []byte
			for _, workers := range []int{1, 2, 8} {
				got := recommendationTranscript(t, ds, opts, workers, baskets)
				if workers == 1 {
					reference = got
					continue
				}
				if !bytes.Equal(got, reference) {
					t.Errorf("Parallelism=%d recommendations diverge from the serial model (%d vs %d transcript bytes)",
						workers, len(got), len(reference))
				}
			}
		})
	}
}

// randomBaskets draws n baskets of 1–6 non-target sales with seeded
// randomness: promotion codes and quantities vary, items may repeat.
func randomBaskets(ds *profitmining.Dataset, n int, seed int64) []profitmining.Basket {
	rng := rand.New(rand.NewSource(seed))
	cat := ds.Catalog
	var nonTargets []profitmining.ItemID
	for _, it := range cat.Items() {
		if !it.Target {
			nonTargets = append(nonTargets, it.ID)
		}
	}
	baskets := make([]profitmining.Basket, n)
	for i := range baskets {
		size := 1 + rng.Intn(6)
		bk := make(profitmining.Basket, 0, size)
		for j := 0; j < size; j++ {
			item := nonTargets[rng.Intn(len(nonTargets))]
			promos := cat.Promos(item)
			bk = append(bk, profitmining.Sale{
				Item:  item,
				Promo: promos[rng.Intn(len(promos))],
				Qty:   float64(1 + rng.Intn(3)),
			})
		}
		baskets[i] = bk
	}
	return baskets
}

// recommendationTranscript builds a model at the given parallelism and
// serializes every basket's top-5 recommendation list (and the single
// best, which must equal slot 0) into one canonical byte stream.
func recommendationTranscript(t *testing.T, ds *profitmining.Dataset, opts profitmining.Options, workers int, baskets []profitmining.Basket) []byte {
	t.Helper()
	opts.Parallelism = workers
	rec, err := profitmining.Build(ds, opts)
	if err != nil {
		t.Fatalf("Parallelism=%d: %v", workers, err)
	}
	var buf bytes.Buffer
	for i, bk := range baskets {
		top := rec.RecommendTopK(bk, 5)
		best := rec.Recommend(bk)
		if len(top) == 0 || top[0] != best {
			t.Fatalf("Parallelism=%d basket %d: Recommend disagrees with RecommendTopK slot 0", workers, i)
		}
		fmt.Fprintf(&buf, "basket %d:", i)
		for _, r := range top {
			fmt.Fprintf(&buf, " ⟨%d,%d⟩rule%d", r.Item, r.Promo, r.Rule.Order)
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}
