package profitmining

import (
	"profitmining/internal/eval"
)

// Evaluation surface: the paper's methodology (5-fold cross-validation,
// gain, hit rate, hit rate by profit range, the (x,y) purchase-behavior
// settings) exposed for downstream use. See EXPERIMENTS.md for how these
// regenerate every figure of the paper.
type (
	// Metrics holds pooled evaluation counts; see Gain, HitRate,
	// RangeHitRate.
	Metrics = eval.Metrics
	// EvalOptions configures one evaluation pass (MOA hits, quantity
	// model, behavior).
	EvalOptions = eval.Options
	// Behavior is the stochastic (x,y) purchase model of Section 5.3.
	Behavior = eval.Behavior
	// Variant names one of the paper's recommenders (PROF±MOA, CONF±MOA,
	// kNN, MPI).
	Variant = eval.Variant
	// SweepConfig drives RunSweep.
	SweepConfig = eval.SweepConfig
	// SweepPoint is one measured figure point.
	SweepPoint = eval.SweepPoint
	// SpaceFactory supplies compiled spaces with/without MOA.
	SpaceFactory = eval.SpaceFactory
)

// The paper's recommender variants (Section 5.1).
const (
	ProfMOA   = eval.ProfMOA
	ProfNoMOA = eval.ProfNoMOA
	ConfMOA   = eval.ConfMOA
	ConfNoMOA = eval.ConfNoMOA
	KNN       = eval.KNN
	KNNRerank = eval.KNNRerank
	MPI       = eval.MPI
)

// PaperVariants are the six recommenders of Figures 3 and 4.
var PaperVariants = eval.PaperVariants

// PaperBehavior is the combined (x=2,y=30%)/(x=3,y=40%) setting.
var PaperBehavior = eval.PaperBehavior

// Evaluate runs a recommender over validation transactions and returns
// pooled metrics. rec is any func(Basket) (ItemID, PromoID); use
// RecommenderFunc to adapt a built Recommender.
func Evaluate(cat *Catalog, validation []Transaction, rec func(Basket) (ItemID, PromoID), opts EvalOptions) Metrics {
	return eval.Evaluate(cat, validation, rec, opts)
}

// RecommenderFunc adapts a Recommender to the evaluation interface.
func RecommenderFunc(r *Recommender) func(Basket) (ItemID, PromoID) {
	return func(b Basket) (ItemID, PromoID) {
		rec := r.Recommend(b)
		return rec.Item, rec.Promo
	}
}

// FlatSpaces returns a SpaceFactory over the trivial hierarchy of a
// catalog — the setting of the paper's synthetic experiments.
func FlatSpaces(cat *Catalog) SpaceFactory { return eval.FlatSpaces(cat) }

// RunSweep runs the cross-validated (variant × minimum-support ×
// behavior) sweep behind the paper's figures. See EXPERIMENTS.md.
func RunSweep(ds *Dataset, spaces SpaceFactory, cfg SweepConfig) ([]SweepPoint, error) {
	return eval.RunSweep(ds, spaces, cfg)
}
