// Package profitmining is a from-scratch Go implementation of
// "Profit Mining: From Patterns to Actions" (Ke Wang, Senqiang Zhou,
// Jiawei Han — EDBT 2002).
//
// Profit mining builds a recommender from past transactions: given a new
// customer's basket of non-target sales, it recommends one target item
// and a promotion code (price/packing) so as to maximize the net profit
// (Price − Cost) × Quantity over future customers — not the hit rate, and
// not the profit of the single most expensive item.
//
// The pipeline reproduced here is the paper's, end to end:
//
//  1. Transactions are generalized over a concept hierarchy extended with
//     MOA ("mining on availability"): a more favorable promotion code is
//     an ancestor of a less favorable one, so a sale at a high price also
//     supports recommending lower prices of the same item (shopping on
//     unavailability, Section 2).
//  2. Association rules {g1,…,gk} → ⟨item, promo⟩ are mined level-wise
//     with both statistical measures (support, confidence) and profit
//     measures: rule profit Prof_ru and recommendation profit Prof_re
//     (Section 3.1).
//  3. The MPF (most-profitable-first) recommender answers queries with
//     the highest-ranked matching rule (Section 3.2).
//  4. A covering tree over the rules is pruned bottom-up to the unique
//     optimal cut, maximizing the pessimistically projected profit on
//     future customers (Clopper–Pearson/C4.5 upper limits, Section 4).
//
// # Quick start
//
//	cat := profitmining.NewCatalog()
//	bread := cat.AddItem("Bread", false)
//	breadP := cat.AddPromo(bread, 2.0, 1.0, 1)
//	egg := cat.AddItem("Egg", true)
//	eggPack := cat.AddPromo(egg, 1.0, 0.5, 1)
//	egg4Pack := cat.AddPromo(egg, 3.2, 2.0, 4)
//
//	ds := &profitmining.Dataset{Catalog: cat, Transactions: ...}
//	rec, err := profitmining.Build(ds, profitmining.Options{MinSupport: 0.01})
//	r := rec.Recommend(profitmining.Basket{{Item: bread, Promo: breadP, Qty: 1}})
//	// r.Item, r.Promo — and r.Rule explains why.
//
// The subpackages under internal implement the substrates (hierarchy
// compilation, the Apriori-style miner, the covering tree, the IBM-Quest
// synthetic data generator, baselines, and the paper's evaluation
// harness); this package is the supported public surface.
package profitmining

import (
	"fmt"

	"profitmining/internal/core"
	"profitmining/internal/hierarchy"
	"profitmining/internal/mining"
	"profitmining/internal/model"
	"profitmining/internal/rules"
)

// Core data-model types. See the respective type documentation for
// semantics; in short: a Transaction has one target Sale and any number of
// non-target Sales, and a PromoCode prices a package of Packing units.
type (
	// Catalog registers items and promotion codes.
	Catalog = model.Catalog
	// Item is a product or a descriptive attribute.
	Item = model.Item
	// ItemID identifies an item within a catalog.
	ItemID = model.ItemID
	// PromoID identifies a promotion code within a catalog.
	PromoID = model.PromoID
	// PromoCode is a priced package of an item.
	PromoCode = model.PromoCode
	// Sale is one transaction line: ⟨item, promo, quantity⟩.
	Sale = model.Sale
	// Transaction couples one target sale with non-target sales.
	Transaction = model.Transaction
	// Basket is a future customer's non-target purchase.
	Basket = model.Basket
	// Dataset couples a catalog with transactions.
	Dataset = model.Dataset

	// QuantityModel estimates purchase quantity at a recommended promo.
	QuantityModel = model.QuantityModel
	// SavingMOA keeps the recorded quantity (the conservative default).
	SavingMOA = model.SavingMOA
	// BuyingMOA keeps the recorded spending.
	BuyingMOA = model.BuyingMOA
	// ExpectedBehavior pushes (x,y) purchase behavior into estimation.
	ExpectedBehavior = model.ExpectedBehavior

	// HierarchyBuilder assembles a concept hierarchy over a catalog.
	HierarchyBuilder = hierarchy.Builder
	// Space is a compiled generalized-sale space (MOA(H)).
	Space = hierarchy.Space

	// Recommender is the built profit-mining model.
	Recommender = core.Recommender
	// Recommendation is one recommended ⟨item, promo⟩ with its rule.
	Recommendation = core.Recommendation
	// BuildStats reports model-construction statistics.
	BuildStats = core.BuildStats
	// Rule is a recommendation rule with its profit-mining measures.
	Rule = rules.Rule
)

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return model.NewCatalog() }

// NewHierarchy returns a concept-hierarchy builder over the catalog. Use
// it to declare concepts (AddConcept) and place non-target items under
// them (PlaceItem); pass the result in Options.Hierarchy.
func NewHierarchy(cat *Catalog) *HierarchyBuilder { return hierarchy.NewBuilder(cat) }

// Options configures Build. The zero value is not usable: set MinSupport,
// MinSupportCount or MinRuleProfit.
type Options struct {
	// MinSupport is the minimum relative support of a rule (e.g. 0.001
	// for the paper's 0.1%). MinSupportCount is its absolute form and
	// takes precedence when set.
	MinSupport      float64
	MinSupportCount int

	// MinRuleProfit, when positive, additionally requires rules to have
	// generated at least this profit on the training data; with no
	// support threshold it replaces support pruning (valid only when all
	// target promotion codes have non-negative profit).
	MinRuleProfit float64

	// MinConfidence, when positive, additionally requires rules to have
	// at least this confidence (hit rate per body match).
	MinConfidence float64

	// MaxBodyLen caps the rule body length (default 3).
	MaxBodyLen int

	// DisableMOA turns off mining-on-availability: promotion codes only
	// match exactly, both in rule bodies and in recommendation heads.
	// (The paper's −MOA ablation; MOA is on by default.)
	DisableMOA bool

	// BinaryProfit builds a confidence-driven model (p(r,t) ∈ {0,1}) —
	// the paper's CONF variants. The resulting recommender maximizes the
	// hit rate rather than the profit.
	BinaryProfit bool

	// CF is the confidence level of the pessimistic projected-profit
	// estimate (default 0.25, as in C4.5).
	CF float64

	// MinInterest, when above 1, additionally drops rules whose
	// recommendation profit does not beat every more general rule's by
	// this factor — the R-interest filter of Srikant–Agrawal's
	// generalized rule mining, adapted to Prof_re. 0 disables it.
	MinInterest float64

	// DisablePruning keeps the full MPF recommender instead of the
	// cut-optimal one (Section 3 without Section 4).
	DisablePruning bool

	// Quantity estimates the purchase quantity a customer accepts at a
	// more favorable code (default SavingMOA; see also BuyingMOA and
	// ExpectedBehavior).
	Quantity QuantityModel

	// Hierarchy optionally supplies a concept hierarchy over the
	// catalog's non-target items; nil uses the flat hierarchy (all items
	// directly under the root).
	Hierarchy *HierarchyBuilder

	// Parallelism bounds the worker pool used while mining rules and
	// building the covering tree. 0 (the default) uses one worker per
	// available CPU; 1 runs the exact serial path. The built recommender
	// is byte-identical for every setting — parallelism only changes the
	// wall-clock time. When Parallelism != 1, a custom Quantity model
	// must be safe for concurrent use (the built-in models are
	// stateless).
	Parallelism int
}

// Build constructs a profit-mining recommender from a dataset: it
// validates the data, compiles MOA(H), mines profit-sensitive generalized
// association rules, and prunes them to the cut-optimal recommender.
func Build(ds *Dataset, opts Options) (*Recommender, error) {
	if ds == nil {
		return nil, fmt.Errorf("profitmining: nil dataset")
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	space, err := compileSpace(ds.Catalog, opts)
	if err != nil {
		return nil, err
	}
	mined, err := mining.Mine(space, ds.Transactions, opts.miningOptions())
	if err != nil {
		return nil, err
	}
	return core.Build(space, ds.Transactions, mined, opts.coreConfig())
}

// miningOptions maps the public options onto the mining stage's.
func (o Options) miningOptions() mining.Options {
	return mining.Options{
		MinSupport:      o.MinSupport,
		MinSupportCount: o.MinSupportCount,
		MinRuleProfit:   o.MinRuleProfit,
		MinConfidence:   o.MinConfidence,
		MaxBodyLen:      o.MaxBodyLen,
		BinaryProfit:    o.BinaryProfit,
		Quantity:        o.Quantity,
		Parallelism:     o.Parallelism,
	}
}

// coreConfig maps the public options onto the model-construction stage's.
func (o Options) coreConfig() core.Config {
	prune := core.PruneCutOptimal
	if o.DisablePruning {
		prune = core.PruneOff
	}
	return core.Config{
		CF:           o.CF,
		Prune:        prune,
		BinaryProfit: o.BinaryProfit,
		Quantity:     o.Quantity,
		MinInterest:  o.MinInterest,
		Parallelism:  o.Parallelism,
	}
}

// CompileSpace compiles the generalized-sale space a dataset's
// recommender will operate on — exposed for advanced use (inspecting
// generalizations, custom evaluation).
func CompileSpace(cat *Catalog, hb *HierarchyBuilder, moa bool) (*Space, error) {
	if hb == nil {
		hb = hierarchy.NewBuilder(cat)
	}
	return hb.Compile(hierarchy.Options{MOA: moa})
}

func compileSpace(cat *Catalog, opts Options) (*Space, error) {
	return CompileSpace(cat, opts.Hierarchy, !opts.DisableMOA)
}
