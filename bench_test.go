// Benchmark harness: one benchmark per panel of the paper's evaluation
// (Figures 3(a)–(f) for dataset I, 4(a)–(f) for dataset II, plus the two
// in-text results of Section 5.3), and micro-benchmarks for the costly
// substrates.
//
// The figure benches run the full 5-fold cross-validated sweep at a
// reduced scale (set by PM_BENCH_TXNS / PM_BENCH_ITEMS, default
// |T|=4000, |I|=100 versus the paper's 100K/1000 — minimum supports are
// relative, so the series shapes are scale-stable; see EXPERIMENTS.md)
// and print the regenerated series once. cmd/profitbench runs the same
// experiments at full scale.
//
//	go test -bench=. -benchmem
package profitmining_test

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"profitmining"
	"profitmining/internal/core"
	"profitmining/internal/eval"
	"profitmining/internal/mining"
	"profitmining/internal/stats"
)

// benchScale reads the benchmark scale from the environment.
func benchScale() (txns, items int) {
	txns, items = 4000, 100
	if v, err := strconv.Atoi(os.Getenv("PM_BENCH_TXNS")); err == nil && v > 0 {
		txns = v
	}
	if v, err := strconv.Atoi(os.Getenv("PM_BENCH_ITEMS")); err == nil && v > 0 {
		items = v
	}
	return txns, items
}

// benchMinSups is the minimum-support sweep used by the figure benches.
// The paper sweeps 0.05%–0.2% at |T|=100K (50–200 transactions absolute);
// at the reduced bench |T| the sweep keeps comparable absolute supports
// (8–80 at the default 4K transactions) rather than comparable relative
// ones, because absolute support is what controls both rule reliability
// and mining cost.
var benchMinSups = []float64{0.002, 0.005, 0.01, 0.02}

// benchRangeSup is the support of the profit-range panels (the paper uses
// 0.08% at |T|=100K, i.e. 80 transactions absolute).
const benchRangeSup = 0.005

type sweepResult struct {
	ds     *profitmining.Dataset
	points []profitmining.SweepPoint
}

var (
	sweepOnce  = map[string]*sync.Once{"I": {}, "II": {}}
	sweepCache = map[string]*sweepResult{}
	sweepErr   = map[string]error{}
	printOnce  sync.Map
)

// benchSweep runs (once per dataset, cached across benches) the full
// cross-validated sweep that all panels of one figure are drawn from.
func benchSweep(b *testing.B, name string) *sweepResult {
	b.Helper()
	sweepOnce[name].Do(func() {
		txns, items := benchScale()
		q := profitmining.QuestConfig{NumTransactions: txns, NumItems: items, Seed: 1}
		var ds *profitmining.Dataset
		var err error
		if name == "I" {
			ds, err = profitmining.GenerateDatasetI(q, 2)
		} else {
			ds, err = profitmining.GenerateDatasetII(q, 2)
		}
		if err != nil {
			sweepErr[name] = err
			return
		}
		points, err := profitmining.RunSweep(ds, profitmining.FlatSpaces(ds.Catalog), profitmining.SweepConfig{
			Variants:    profitmining.PaperVariants,
			MinSupports: benchMinSups,
			Behaviors:   []profitmining.Behavior{{}, eval.NearBehavior, profitmining.PaperBehavior},
			Folds:       5,
			Seed:        3,
		})
		if err != nil {
			sweepErr[name] = err
			return
		}
		sweepCache[name] = &sweepResult{ds: ds, points: points}
	})
	if sweepErr[name] != nil {
		b.Fatal(sweepErr[name])
	}
	return sweepCache[name]
}

func printPanel(key, title, body string) {
	if _, dup := printOnce.LoadOrStore(key, true); dup {
		return
	}
	fmt.Printf("\n-- %s --\n%s\n", title, body)
}

func plainPoints(ps []profitmining.SweepPoint) []profitmining.SweepPoint {
	return eval.FilterPoints(ps, func(p profitmining.SweepPoint) bool { return !p.Behavior.Enabled() })
}

// pointAt fetches the series value for reporting headline metrics.
func pointAt(b *testing.B, ps []profitmining.SweepPoint, v profitmining.Variant, ms float64) profitmining.SweepPoint {
	b.Helper()
	for _, p := range ps {
		if p.Variant == v && p.MinSupport == ms && !p.Behavior.Enabled() {
			return p
		}
	}
	b.Fatalf("missing point %s @ %g", v, ms)
	return profitmining.SweepPoint{}
}

// figGain benchmarks one gain-vs-support panel (Figures 3(a)/4(a)).
func figGain(b *testing.B, name, fig string) {
	var r *sweepResult
	for i := 0; i < b.N; i++ {
		r = benchSweep(b, name)
	}
	plain := plainPoints(r.points)
	printPanel(fig+"a", fmt.Sprintf("Figure %s(a): gain vs minimum support (dataset %s)", fig, name),
		eval.FormatGainTable(plain))
	b.ReportMetric(pointAt(b, plain, profitmining.ProfMOA, benchMinSups[0]).Metrics.Gain(), "gain(PROF+MOA)")
	b.ReportMetric(pointAt(b, plain, profitmining.ConfNoMOA, benchMinSups[0]).Metrics.Gain(), "gain(CONF-MOA)")
}

func BenchmarkFig3aGainVsSupport(b *testing.B) { figGain(b, "I", "3") }
func BenchmarkFig4aGainVsSupport(b *testing.B) { figGain(b, "II", "4") }

// figBehavior benchmarks the behavior-setting gain panels (3(b)/4(b)).
func figBehavior(b *testing.B, name, fig string) {
	var r *sweepResult
	for i := 0; i < b.N; i++ {
		r = benchSweep(b, name)
	}
	behaved := eval.FilterPoints(r.points, func(p profitmining.SweepPoint) bool {
		return p.Behavior.Enabled() && p.Variant.UsesMOA()
	})
	printPanel(fig+"b", fmt.Sprintf("Figure %s(b): gain with purchase-behavior settings (dataset %s)", fig, name),
		eval.FormatGainTable(behaved))
	for _, p := range behaved {
		if p.Variant == profitmining.ProfMOA && p.MinSupport == benchMinSups[0] &&
			p.Behavior == profitmining.PaperBehavior {
			b.ReportMetric(p.Metrics.Gain(), "gain(PROF,x3y40)")
		}
	}
}

func BenchmarkFig3bGainWithBehavior(b *testing.B) { figBehavior(b, "I", "3") }
func BenchmarkFig4bGainWithBehavior(b *testing.B) { figBehavior(b, "II", "4") }

// figHitRate benchmarks the hit-rate panels (3(c)/4(c)).
func figHitRate(b *testing.B, name, fig string) {
	var r *sweepResult
	for i := 0; i < b.N; i++ {
		r = benchSweep(b, name)
	}
	plain := plainPoints(r.points)
	printPanel(fig+"c", fmt.Sprintf("Figure %s(c): hit rate vs minimum support (dataset %s)", fig, name),
		eval.FormatHitRateTable(plain))
	b.ReportMetric(pointAt(b, plain, profitmining.ProfMOA, benchMinSups[0]).Metrics.HitRate(), "hit(PROF+MOA)")
}

func BenchmarkFig3cHitRate(b *testing.B) { figHitRate(b, "I", "3") }
func BenchmarkFig4cHitRate(b *testing.B) { figHitRate(b, "II", "4") }

// figRange benchmarks the hit-rate-by-profit-range panels (3(d)/4(d)).
func figRange(b *testing.B, name, fig string) {
	var r *sweepResult
	for i := 0; i < b.N; i++ {
		r = benchSweep(b, name)
	}
	ranged := eval.FilterPoints(r.points, func(p profitmining.SweepPoint) bool {
		return !p.Behavior.Enabled() && p.MinSupport == benchRangeSup
	})
	printPanel(fig+"d", fmt.Sprintf("Figure %s(d): hit rate by profit range at minsup %.2g%% (dataset %s)",
		fig, benchRangeSup*100, name), eval.FormatRangeHitRates(ranged))
	for _, p := range ranged {
		if p.Variant == profitmining.ProfMOA {
			b.ReportMetric(p.Metrics.RangeHitRate(2), "hiRange(PROF+MOA)")
		}
		if p.Variant == profitmining.KNN {
			b.ReportMetric(p.Metrics.RangeHitRate(2), "hiRange(kNN)")
		}
	}
}

func BenchmarkFig3dHitRateByProfit(b *testing.B) { figRange(b, "I", "3") }
func BenchmarkFig4dHitRateByProfit(b *testing.B) { figRange(b, "II", "4") }

// figProfitDist benchmarks the target-profit distribution panels (3(e)/4(e)).
func figProfitDist(b *testing.B, name, fig string) {
	r := benchSweep(b, name)
	var h fmt.Stringer
	for i := 0; i < b.N; i++ {
		h = eval.TargetProfitHistogram(r.ds, 10)
	}
	printPanel(fig+"e", fmt.Sprintf("Figure %s(e): profit distribution of target sales (dataset %s)", fig, name),
		h.String())
}

func BenchmarkFig3eProfitDistribution(b *testing.B) { figProfitDist(b, "I", "3") }
func BenchmarkFig4eProfitDistribution(b *testing.B) { figProfitDist(b, "II", "4") }

// figRules benchmarks the rule-count panels (3(f)/4(f)) including the
// in-text pre-pruning counts.
func figRules(b *testing.B, name, fig string) {
	var r *sweepResult
	for i := 0; i < b.N; i++ {
		r = benchSweep(b, name)
	}
	plain := eval.FilterPoints(plainPoints(r.points), func(p profitmining.SweepPoint) bool {
		return p.Variant.RuleBased()
	})
	body := eval.FormatRuleCountTable(plain)
	body += "\npre-pruning (generated) rule counts, PROF+MOA:\n"
	for _, p := range plain {
		if p.Variant == profitmining.ProfMOA {
			body += fmt.Sprintf("  minsup %.3g%%: %.0f generated → %.0f final\n",
				p.MinSupport*100, p.Info.RulesGenerated, p.Info.RulesFinal)
		}
	}
	printPanel(fig+"f", fmt.Sprintf("Figure %s(f): number of rules vs minimum support (dataset %s)", fig, name), body)
	b.ReportMetric(pointAt(b, plain, profitmining.ProfMOA, benchMinSups[0]).Info.RulesFinal, "rules(PROF+MOA)")
}

func BenchmarkFig3fRuleCount(b *testing.B) { figRules(b, "I", "3") }
func BenchmarkFig4fRuleCount(b *testing.B) { figRules(b, "II", "4") }

// BenchmarkKNNPostProcessing reproduces the Section 5.3 in-text result:
// profit-reranking kNN's neighbors changes the gain only marginally
// (≈+2% on dataset I, ≈−5% on dataset II in the paper).
func BenchmarkKNNPostProcessing(b *testing.B) {
	for _, name := range []string{"I", "II"} {
		r := benchSweep(b, name)
		var points []profitmining.SweepPoint
		for i := 0; i < b.N; i++ {
			var err error
			points, err = profitmining.RunSweep(r.ds, profitmining.FlatSpaces(r.ds.Catalog), profitmining.SweepConfig{
				Variants:    []profitmining.Variant{profitmining.KNN, profitmining.KNNRerank},
				MinSupports: benchMinSups[:1],
				Folds:       5,
				Seed:        3,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		var plainG, rerankG float64
		for _, p := range points {
			if p.Variant == profitmining.KNN {
				plainG = p.Metrics.Gain()
			} else {
				rerankG = p.Metrics.Gain()
			}
		}
		printPanel("knn"+name, fmt.Sprintf("Section 5.3: kNN profit-rerank (dataset %s)", name),
			fmt.Sprintf("kNN gain %.4f → rerank %.4f (Δ %+.2f%%)", plainG, rerankG, 100*(rerankG-plainG)))
		b.ReportMetric(100*(rerankG-plainG), "delta%(ds"+name+")")
	}
}

// ---- micro-benchmarks for the substrates ----

// BenchmarkBuildRecommender measures one full model build (mine +
// covering tree + cut-optimal pruning) on dataset I.
func BenchmarkBuildRecommender(b *testing.B) {
	r := benchSweep(b, "I")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := profitmining.Build(r.ds, profitmining.Options{MinSupport: 0.002})
		if err != nil {
			b.Fatal(err)
		}
		_ = rec
	}
}

// BenchmarkRecommend measures MPF query latency.
func BenchmarkRecommend(b *testing.B) {
	r := benchSweep(b, "I")
	rec, err := profitmining.Build(r.ds, profitmining.Options{MinSupport: 0.002})
	if err != nil {
		b.Fatal(err)
	}
	baskets := make([]profitmining.Basket, 0, 256)
	for i := 0; i < 256 && i < len(r.ds.Transactions); i++ {
		baskets = append(baskets, r.ds.Transactions[i].NonTarget)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rec.Recommend(baskets[i%len(baskets)])
	}
}

// BenchmarkPessimisticUpper measures the Clopper–Pearson bound, the inner
// loop of covering-tree pruning.
func BenchmarkPessimisticUpper(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = stats.PessimisticUpper(1+i%500, i%100, stats.DefaultCF)
	}
}

// BenchmarkGenerateDatasetI measures synthetic data generation.
func BenchmarkGenerateDatasetI(b *testing.B) {
	txns, items := benchScale()
	for i := 0; i < b.N; i++ {
		_, err := profitmining.GenerateDatasetI(profitmining.QuestConfig{
			NumTransactions: txns, NumItems: items, Seed: int64(i),
		}, int64(i))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalabilityBuildTime reproduces the Section 5.3 in-text claim
// that execution time is dominated by association-rule generation: it
// times mining separately from the covering-tree phases across dataset
// sizes.
func BenchmarkScalabilityBuildTime(b *testing.B) {
	sizes := []int{1000, 2000, 4000}
	var report strings.Builder
	fmt.Fprintf(&report, "%8s %10s %12s %10s\n", "|T|", "mine", "tree+prune", "mine share")
	for i := 0; i < b.N; i++ {
		report.Reset()
		fmt.Fprintf(&report, "%8s %10s %12s %10s\n", "|T|", "mine", "tree+prune", "mine share")
		for _, n := range sizes {
			ds, err := profitmining.GenerateDatasetI(profitmining.QuestConfig{
				NumTransactions: n, NumItems: 100, Seed: 7,
			}, 8)
			if err != nil {
				b.Fatal(err)
			}
			space, err := profitmining.CompileSpace(ds.Catalog, nil, true)
			if err != nil {
				b.Fatal(err)
			}
			start := time.Now()
			mined, err := mining.Mine(space, ds.Transactions, mining.Options{MinSupport: 0.005})
			if err != nil {
				b.Fatal(err)
			}
			mineTime := time.Since(start)
			start = time.Now()
			if _, err := core.Build(space, ds.Transactions, mined, core.Config{}); err != nil {
				b.Fatal(err)
			}
			treeTime := time.Since(start)
			fmt.Fprintf(&report, "%8d %10s %12s %9.0f%%\n", n,
				mineTime.Round(time.Millisecond), treeTime.Round(time.Millisecond),
				100*float64(mineTime)/float64(mineTime+treeTime))
		}
	}
	printPanel("scalability", "Section 5.3: execution time dominated by rule generation", report.String())
}

// ---- ablation benches for the design choices called out in DESIGN.md ----

// heldOutGain builds on 80% of the dataset and evaluates MOA-hit gain on
// the held-out 20%.
func heldOutGain(b *testing.B, ds *profitmining.Dataset, opts profitmining.Options) (float64, int) {
	b.Helper()
	cut := len(ds.Transactions) * 4 / 5
	train := &profitmining.Dataset{Catalog: ds.Catalog, Transactions: ds.Transactions[:cut]}
	rec, err := profitmining.Build(train, opts)
	if err != nil {
		b.Fatal(err)
	}
	m := profitmining.Evaluate(ds.Catalog, ds.Transactions[cut:],
		profitmining.RecommenderFunc(rec), profitmining.EvalOptions{MOAHits: true})
	return m.Gain(), rec.Stats().RulesFinal
}

// BenchmarkAblationPruning compares the cut-optimal recommender against
// the unpruned MPF recommender on held-out gain and model size — the
// Section 4 design choice in isolation.
func BenchmarkAblationPruning(b *testing.B) {
	r := benchSweep(b, "I")
	var prunedGain, rawGain float64
	var prunedRules, rawRules int
	for i := 0; i < b.N; i++ {
		prunedGain, prunedRules = heldOutGain(b, r.ds, profitmining.Options{MinSupport: 0.005})
		rawGain, rawRules = heldOutGain(b, r.ds, profitmining.Options{MinSupport: 0.005, DisablePruning: true})
	}
	printPanel("ablation-prune", "Ablation: cut-optimal pruning vs raw MPF recommender",
		fmt.Sprintf("cut-optimal: gain %.4f with %d rules\nraw MPF:     gain %.4f with %d rules",
			prunedGain, prunedRules, rawGain, rawRules))
	b.ReportMetric(prunedGain, "gain(pruned)")
	b.ReportMetric(rawGain, "gain(raw)")
	b.ReportMetric(float64(prunedRules), "rules(pruned)")
	b.ReportMetric(float64(rawRules), "rules(raw)")
}

// BenchmarkAblationHierarchy compares mining with and without the concept
// hierarchy on the grocery dataset — the [SA95, HF95] multi-level bodies.
func BenchmarkAblationHierarchy(b *testing.B) {
	g := profitmining.NewGrocery(4000, 9)
	var withGain, flatGain float64
	var withRules, flatRules int
	for i := 0; i < b.N; i++ {
		withGain, withRules = heldOutGain(b, g.Dataset, profitmining.Options{MinSupport: 0.01, Hierarchy: g.Builder})
		flatGain, flatRules = heldOutGain(b, g.Dataset, profitmining.Options{MinSupport: 0.01})
	}
	printPanel("ablation-hier", "Ablation: concept hierarchy vs flat item space (grocery)",
		fmt.Sprintf("with hierarchy: gain %.4f with %d rules\nflat:           gain %.4f with %d rules",
			withGain, withRules, flatGain, flatRules))
	b.ReportMetric(withGain, "gain(hier)")
	b.ReportMetric(flatGain, "gain(flat)")
}

// BenchmarkAblationInterest measures the R-interest filter ([SA95]
// adapted to Prof_re): rule-set size and held-out gain with and without
// MinInterest.
func BenchmarkAblationInterest(b *testing.B) {
	r := benchSweep(b, "I")
	var plainGain, filteredGain float64
	var plainRules, filteredRules int
	for i := 0; i < b.N; i++ {
		plainGain, plainRules = heldOutGain(b, r.ds, profitmining.Options{MinSupport: 0.005})
		filteredGain, filteredRules = heldOutGain(b, r.ds, profitmining.Options{MinSupport: 0.005, MinInterest: 1.2})
	}
	printPanel("ablation-interest", "Ablation: R-interest filter (MinInterest 1.2)",
		fmt.Sprintf("plain:      gain %.4f with %d rules\nR-interest: gain %.4f with %d rules",
			plainGain, plainRules, filteredGain, filteredRules))
	b.ReportMetric(plainGain, "gain(plain)")
	b.ReportMetric(filteredGain, "gain(interest)")
	b.ReportMetric(float64(filteredRules), "rules(interest)")
}

// BenchmarkAblationBuyingMOA compares saving and buying MOA estimation
// (Section 3.1) under matched evaluation.
func BenchmarkAblationBuyingMOA(b *testing.B) {
	r := benchSweep(b, "I")
	cut := len(r.ds.Transactions) * 4 / 5
	train := &profitmining.Dataset{Catalog: r.ds.Catalog, Transactions: r.ds.Transactions[:cut]}
	holdout := r.ds.Transactions[cut:]
	var savingGain, buyingGain float64
	for i := 0; i < b.N; i++ {
		recS, err := profitmining.Build(train, profitmining.Options{MinSupport: 0.005})
		if err != nil {
			b.Fatal(err)
		}
		recB, err := profitmining.Build(train, profitmining.Options{MinSupport: 0.005, Quantity: profitmining.BuyingMOA{}})
		if err != nil {
			b.Fatal(err)
		}
		savingGain = profitmining.Evaluate(r.ds.Catalog, holdout, profitmining.RecommenderFunc(recS),
			profitmining.EvalOptions{MOAHits: true}).Gain()
		buyingGain = profitmining.Evaluate(r.ds.Catalog, holdout, profitmining.RecommenderFunc(recB),
			profitmining.EvalOptions{MOAHits: true, Quantity: profitmining.BuyingMOA{}}).Gain()
	}
	printPanel("ablation-buying", "Ablation: saving MOA vs buying MOA (dataset I)",
		fmt.Sprintf("saving MOA: gain %.4f (≤ 1 by construction)\nbuying MOA: gain %.4f (spending preserved, can exceed recorded profit per hit)",
			savingGain, buyingGain))
	b.ReportMetric(savingGain, "gain(saving)")
	b.ReportMetric(buyingGain, "gain(buying)")
}
